#include <gtest/gtest.h>

#include <tuple>

#include "topology/algorithms.hpp"
#include "topology/generator.hpp"
#include "topology/stats.hpp"
#include "util/rng.hpp"

namespace centaur::topo {
namespace {

using util::Rng;

// --------------------------------------------------------------- BA -------

TEST(BarabasiAlbert, SizesAndConnectivity) {
  Rng rng(1);
  const AsGraph g = barabasi_albert(200, 2, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  // clique(3) has 3 links, then 197 nodes x 2 links.
  EXPECT_EQ(g.num_links(), 3u + 197u * 2u);
  EXPECT_TRUE(is_connected(g));
}

TEST(BarabasiAlbert, ProducesSkewedDegrees) {
  Rng rng(2);
  const AsGraph g = barabasi_albert(500, 2, rng);
  const auto order = nodes_by_degree(g);
  // Hubs should be far above the minimum degree m=2.
  EXPECT_GE(g.degree(order[0]), 20u);
}

TEST(BarabasiAlbert, RejectsBadParams) {
  Rng rng(3);
  EXPECT_THROW(barabasi_albert(2, 2, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(10, 0, rng), std::invalid_argument);
}

TEST(BarabasiAlbert, DeterministicForSeed) {
  Rng a(7), b(7);
  const AsGraph g1 = barabasi_albert(100, 2, a);
  const AsGraph g2 = barabasi_albert(100, 2, b);
  ASSERT_EQ(g1.num_links(), g2.num_links());
  for (LinkId l = 0; l < g1.num_links(); ++l) {
    EXPECT_EQ(g1.link(l).a, g2.link(l).a);
    EXPECT_EQ(g1.link(l).b, g2.link(l).b);
  }
}

// ------------------------------------------------------------ Waxman ------

TEST(Waxman, ProducesConnectedComponent) {
  Rng rng(4);
  const AsGraph g = waxman(100, 0.6, 0.4, rng);
  EXPECT_GT(g.num_nodes(), 50u);
  EXPECT_TRUE(is_connected(g));
}

// ---------------------------------------------------- tiered_internet -----

class TieredInternetTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(TieredInternetTest, StructuralInvariants) {
  const auto [nodes, seed] = GetParam();
  Rng rng(seed);
  const AsGraph g = tiered_internet(caida_like_params(nodes), rng);
  EXPECT_EQ(g.num_nodes(), nodes);
  EXPECT_TRUE(is_connected(g));

  // Every non-tier1 node must have a provider or sibling (valley-free
  // reachability guarantee).
  const auto params = caida_like_params(nodes);
  for (NodeId v = static_cast<NodeId>(params.tier1_count); v < nodes; ++v) {
    bool has_upstream = false;
    for (const Neighbor& nb : g.neighbors(v)) {
      if (nb.rel == Relationship::kProvider ||
          nb.rel == Relationship::kSibling) {
        has_upstream = true;
        break;
      }
    }
    EXPECT_TRUE(has_upstream) << "node " << v << " has no provider";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TieredInternetTest,
    ::testing::Combine(::testing::Values<std::size_t>(50, 200, 800),
                       ::testing::Values<std::uint64_t>(1, 42, 999)));

TEST(TieredInternet, CaidaLikeLinkMix) {
  Rng rng(11);
  const AsGraph g = tiered_internet(caida_like_params(3000), rng);
  const TopologyStats s = compute_stats(g, "caida-like");
  const double peer_frac =
      static_cast<double>(s.peering) / static_cast<double>(s.links);
  // Paper Table 3 (CAIDA): 4002/52691 = 7.6% peering.
  EXPECT_NEAR(peer_frac, 0.076, 0.03);
  EXPECT_GT(s.avg_degree, 2.5);
  EXPECT_LT(s.avg_degree, 6.0);
}

TEST(TieredInternet, HetopLikeHasRichPeering) {
  Rng rng(12);
  const AsGraph caida = tiered_internet(caida_like_params(2000), rng);
  const AsGraph hetop = tiered_internet(hetop_like_params(2000), rng);
  const auto cs = compute_stats(caida, "c");
  const auto hs = compute_stats(hetop, "h");
  const double cf =
      static_cast<double>(cs.peering) / static_cast<double>(cs.links);
  const double hf =
      static_cast<double>(hs.peering) / static_cast<double>(hs.links);
  // HeTop finds far more peering links than CAIDA (paper Table 3).
  EXPECT_GT(hf, 2.5 * cf);
}

TEST(TieredInternet, SiblingLinksPresentButRare) {
  Rng rng(13);
  const AsGraph g = tiered_internet(caida_like_params(4000), rng);
  const auto s = compute_stats(g, "x");
  EXPECT_GT(s.sibling, 0u);
  EXPECT_LT(static_cast<double>(s.sibling) / static_cast<double>(s.links),
            0.02);
}

TEST(TieredInternet, RejectsDegenerate) {
  Rng rng(1);
  TieredParams p;
  p.nodes = 2;
  EXPECT_THROW(tiered_internet(p, rng), std::invalid_argument);
}

// ------------------------------------------------ degree inference --------

TEST(Inference, Tier1PeerMeshAndOrientation) {
  Rng rng(5);
  const AsGraph plain = barabasi_albert(300, 2, rng);
  const InferenceResult res = infer_relationships_by_degree(plain, 5, rng);
  EXPECT_EQ(res.graph.num_nodes(), plain.num_nodes());
  EXPECT_GE(res.graph.num_links(), plain.num_links());

  // Tier-1 nodes are the 5 largest-degree nodes and pairwise peered.
  const auto order = nodes_by_degree(plain);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(res.tier[order[i]], 0u);
    for (std::size_t j = i + 1; j < 5; ++j) {
      ASSERT_TRUE(res.graph.has_link(order[i], order[j]));
      EXPECT_EQ(res.graph.rel(order[i], order[j]), Relationship::kPeer);
    }
  }
}

TEST(Inference, EveryNonCoreNodeHasProvider) {
  Rng rng(6);
  const AsGraph plain = barabasi_albert(400, 2, rng);
  const InferenceResult res = infer_relationships_by_degree(plain, 8, rng);
  for (NodeId v = 0; v < res.graph.num_nodes(); ++v) {
    if (res.tier[v] == 0) continue;
    bool has_provider = false;
    for (const Neighbor& nb : res.graph.neighbors(v)) {
      if (nb.rel == Relationship::kProvider ||
          nb.rel == Relationship::kSibling) {
        has_provider = true;
      }
    }
    EXPECT_TRUE(has_provider) << "node " << v;
  }
}

TEST(Inference, CrossTierLinksPointUp) {
  Rng rng(7);
  const AsGraph plain = barabasi_albert(200, 2, rng);
  const InferenceResult res = infer_relationships_by_degree(plain, 5, rng);
  for (LinkId l = 0; l < res.graph.num_links(); ++l) {
    const Link& link = res.graph.link(l);
    if (res.tier[link.a] < res.tier[link.b]) {
      // a is higher tier (numerically lower) => a provides for b.
      EXPECT_EQ(link.rel_ab, Relationship::kCustomer)
          << "link " << link.a << "<->" << link.b;
    } else if (res.tier[link.a] > res.tier[link.b]) {
      EXPECT_EQ(link.rel_ab, Relationship::kProvider);
    }
  }
}

TEST(BriteLike, ProducesAnnotatedConnectedGraph) {
  Rng rng(8);
  const AsGraph g = brite_like(500, 2, 10, rng);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_TRUE(is_connected(g));
  const auto c = g.count_links();
  EXPECT_GT(c.provider, 0u);
  EXPECT_GT(c.peering, 0u);
}

}  // namespace
}  // namespace centaur::topo
