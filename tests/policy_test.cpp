#include <gtest/gtest.h>

#include "policy/policy.hpp"
#include "policy/valley_free.hpp"
#include "topology/as_graph.hpp"

namespace centaur::policy {
namespace {

using topo::AsGraph;
using topo::Relationship;

// ----------------------------------------------------------- sources ------

TEST(RouteSource, FromRelationship) {
  EXPECT_EQ(source_from_rel(Relationship::kCustomer), RouteSource::kCustomer);
  EXPECT_EQ(source_from_rel(Relationship::kProvider), RouteSource::kProvider);
  EXPECT_EQ(source_from_rel(Relationship::kPeer), RouteSource::kPeer);
  EXPECT_EQ(source_from_rel(Relationship::kSibling), RouteSource::kSibling);
}

TEST(RouteSource, PreferenceClasses) {
  EXPECT_EQ(preference_class(RouteSource::kSelf), 0);
  EXPECT_EQ(preference_class(RouteSource::kCustomer), 1);
  EXPECT_EQ(preference_class(RouteSource::kSibling), 1);
  EXPECT_EQ(preference_class(RouteSource::kPeer), 2);
  EXPECT_EQ(preference_class(RouteSource::kProvider), 3);
}

// ------------------------------------------------------------ export ------

TEST(Export, GaoRexfordMatrix) {
  // Everything is exported to customers and siblings.
  for (const auto src :
       {RouteSource::kSelf, RouteSource::kCustomer, RouteSource::kSibling,
        RouteSource::kPeer, RouteSource::kProvider}) {
    EXPECT_TRUE(may_export(src, Relationship::kCustomer));
    EXPECT_TRUE(may_export(src, Relationship::kSibling));
  }
  // Peers/providers only hear self/customer/sibling routes.
  for (const auto to : {Relationship::kPeer, Relationship::kProvider}) {
    EXPECT_TRUE(may_export(RouteSource::kSelf, to));
    EXPECT_TRUE(may_export(RouteSource::kCustomer, to));
    EXPECT_TRUE(may_export(RouteSource::kSibling, to));
    EXPECT_FALSE(may_export(RouteSource::kPeer, to));
    EXPECT_FALSE(may_export(RouteSource::kProvider, to));
  }
}

// ----------------------------------------------------------- ranking ------

TEST(Ranking, ClassDominatesLength) {
  const Candidate customer_long{RouteSource::kCustomer, 9, 5};
  const Candidate peer_short{RouteSource::kPeer, 1, 3};
  EXPECT_TRUE(better(customer_long, peer_short));
  EXPECT_FALSE(better(peer_short, customer_long));
}

TEST(Ranking, LengthThenNextHop) {
  const Candidate a{RouteSource::kPeer, 2, 7};
  const Candidate b{RouteSource::kPeer, 3, 1};
  EXPECT_TRUE(better(a, b));
  const Candidate c{RouteSource::kPeer, 2, 1};
  EXPECT_TRUE(better(c, a));
  EXPECT_FALSE(better(a, c));
}

TEST(Ranking, EqualCandidatesNotStrictlyBetter) {
  const Candidate a{RouteSource::kCustomer, 2, 4};
  EXPECT_FALSE(better(a, a));
}

TEST(Ranking, SiblingTiesWithCustomer) {
  const Candidate sib{RouteSource::kSibling, 2, 1};
  const Candidate cust{RouteSource::kCustomer, 2, 2};
  // Same class, same length: lower next hop wins.
  EXPECT_TRUE(better(sib, cust));
}

// --------------------------------------------------- path validation ------

AsGraph chain(std::initializer_list<Relationship> rels) {
  AsGraph g(rels.size() + 1);
  topo::NodeId v = 0;
  for (Relationship r : rels) {
    // r = role of (v+1) relative to v.
    g.add_link(v, v + 1, r);
    ++v;
  }
  return g;
}

TEST(ValleyFree, UpThenDownIsValid) {
  // 0 -up-> 1 -up-> 2 -down-> 3 -down-> 4
  const AsGraph g = chain({Relationship::kProvider, Relationship::kProvider,
                           Relationship::kCustomer, Relationship::kCustomer});
  EXPECT_TRUE(is_valley_free(g, {0, 1, 2, 3, 4}));
}

TEST(ValleyFree, SinglePeerHopAllowedAtTop) {
  const AsGraph g = chain({Relationship::kProvider, Relationship::kPeer,
                           Relationship::kCustomer});
  EXPECT_TRUE(is_valley_free(g, {0, 1, 2, 3}));
}

TEST(ValleyFree, ValleyRejected) {
  // down then up = valley.
  const AsGraph g = chain({Relationship::kCustomer, Relationship::kProvider});
  EXPECT_FALSE(is_valley_free(g, {0, 1, 2}));
}

TEST(ValleyFree, TwoPeerHopsRejected) {
  const AsGraph g = chain({Relationship::kPeer, Relationship::kPeer});
  EXPECT_FALSE(is_valley_free(g, {0, 1, 2}));
}

TEST(ValleyFree, PeerAfterDownRejected) {
  const AsGraph g = chain({Relationship::kCustomer, Relationship::kPeer});
  EXPECT_FALSE(is_valley_free(g, {0, 1, 2}));
}

TEST(ValleyFree, UpAfterPeerRejected) {
  const AsGraph g = chain({Relationship::kPeer, Relationship::kProvider});
  EXPECT_FALSE(is_valley_free(g, {0, 1, 2}));
}

TEST(ValleyFree, SiblingHopsTransparent) {
  // up, sibling, peer, sibling, down: still up* peer down* after skipping
  // sibling hops.
  const AsGraph g =
      chain({Relationship::kProvider, Relationship::kSibling,
             Relationship::kPeer, Relationship::kSibling,
             Relationship::kCustomer});
  EXPECT_TRUE(is_valley_free(g, {0, 1, 2, 3, 4, 5}));
}

TEST(ValleyFree, SiblingDoesNotLegalizeValley) {
  const AsGraph g = chain({Relationship::kCustomer, Relationship::kSibling,
                           Relationship::kProvider});
  EXPECT_FALSE(is_valley_free(g, {0, 1, 2, 3}));
}

TEST(ValleyFree, TrivialAndSingleHop) {
  const AsGraph g = chain({Relationship::kPeer});
  EXPECT_TRUE(is_valley_free(g, {0}));
  EXPECT_TRUE(is_valley_free(g, {0, 1}));
  EXPECT_FALSE(is_valley_free(g, {}));
}

// ----------------------------------------------------- classification -----

TEST(ClassifyPath, FirstHopDetermines) {
  const AsGraph g = chain({Relationship::kProvider, Relationship::kCustomer});
  EXPECT_EQ(classify_path(g, {0}), RouteSource::kSelf);
  EXPECT_EQ(classify_path(g, {0, 1, 2}), RouteSource::kProvider);
  EXPECT_EQ(classify_path(g, {2, 1, 0}), RouteSource::kProvider);
}

TEST(ClassifyPath, SiblingPrefixSkipped) {
  const AsGraph g = chain({Relationship::kSibling, Relationship::kPeer});
  EXPECT_EQ(classify_path(g, {0, 1, 2}), RouteSource::kPeer);
  EXPECT_EQ(classify_path(g, {0, 1}), RouteSource::kSibling);
}

TEST(ClassifyPath, EmptyThrows) {
  const AsGraph g = chain({Relationship::kPeer});
  EXPECT_THROW(classify_path(g, {}), std::invalid_argument);
}

}  // namespace
}  // namespace centaur::policy
