#include <gtest/gtest.h>

#include <map>

#include "centaur/announce.hpp"
#include "centaur/build_graph.hpp"

namespace centaur::core {
namespace {

constexpr NodeId A = 0, B = 1, C = 2, D = 3, Dp = 4;

std::map<NodeId, Path> fig4_selection() {
  return {
      {C, {C}},
      {A, {C, A}},
      {B, {C, A, B}},
      {D, {C, A, B, D}},
      {Dp, {C, D, Dp}},
  };
}

PGraph fig4_local() { return build_local_pgraph(C, fig4_selection()); }

DestFilter allow_all_dests() {
  return [](NodeId) { return true; };
}

TEST(ExportView, AllDestsExportsEverything) {
  const PGraph local = fig4_local();
  const ExportedView v = make_export_view(local, allow_all_dests());
  EXPECT_EQ(v.links.size(), local.num_links());
  EXPECT_EQ(v.destinations, (std::set<NodeId>{A, B, C, D, Dp}));
  // Multi-homed head links carry their permission lists on the wire.
  EXPECT_TRUE(v.links.at(DirectedLink{B, D}).permits(D, kNoNextHop));
  EXPECT_TRUE(v.links.at(DirectedLink{C, D}).permits(Dp, Dp));
  // Single-homed heads ship empty lists.
  EXPECT_TRUE(v.links.at(DirectedLink{C, A}).empty());
}

TEST(ExportView, DestFilterPrunesLinksAndPermissions) {
  const PGraph local = fig4_local();
  // Only D' may be exported: the only links carrying D' traffic are C->D
  // and D->D'.
  const ExportedView v = make_export_view(
      local, [](NodeId dest) { return dest == Dp; });
  EXPECT_EQ(v.destinations, (std::set<NodeId>{Dp}));
  EXPECT_EQ(v.links.size(), 2u);
  EXPECT_TRUE(v.links.count(DirectedLink{C, D}));
  EXPECT_TRUE(v.links.count(DirectedLink{D, Dp}));
  // The C->D permission list keeps only the D' entry.
  EXPECT_TRUE(v.links.at(DirectedLink{C, D}).permits(Dp, Dp));
  EXPECT_EQ(v.links.at(DirectedLink{C, D}).dest_count(), 1u);
}

TEST(ExportView, LinkFilterHidesSpecificLinks) {
  const PGraph local = fig4_local();
  const ExportedView v = make_export_view(
      local, allow_all_dests(),
      [](NodeId from, NodeId to) { return !(from == C && to == D); });
  EXPECT_FALSE(v.links.count(DirectedLink{C, D}));
  EXPECT_TRUE(v.links.count(DirectedLink{B, D}));
}

TEST(Diff, EmptyToFullIsAllUpserts) {
  const ExportedView after = make_export_view(fig4_local(), allow_all_dests());
  const GraphDelta d = diff_views(ExportedView{}, after);
  EXPECT_EQ(d.upserts.size(), after.links.size());
  EXPECT_TRUE(d.removes.empty());
  EXPECT_EQ(d.dest_adds.size(), after.destinations.size());
  EXPECT_FALSE(d.empty());
}

TEST(Diff, IdenticalViewsYieldEmptyDelta) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  EXPECT_TRUE(diff_views(v, v).empty());
}

TEST(Diff, DetectsRemovalsAndPlistChanges) {
  const ExportedView before = make_export_view(fig4_local(), allow_all_dests());
  ExportedView after = before;
  after.links.erase(DirectedLink{D, Dp});
  after.destinations.erase(Dp);
  after.links.at(DirectedLink{C, D}).add(99, 98);  // plist change
  const GraphDelta d = diff_views(before, after);
  ASSERT_EQ(d.removes.size(), 1u);
  EXPECT_EQ(d.removes[0], (DirectedLink{D, Dp}));
  ASSERT_EQ(d.upserts.size(), 1u);
  EXPECT_EQ(d.upserts[0].first, (DirectedLink{C, D}));
  ASSERT_EQ(d.dest_removes.size(), 1u);
  EXPECT_EQ(d.dest_removes[0], Dp);
  EXPECT_TRUE(d.dest_adds.empty());
}

TEST(ApplyDelta, ReconstructsTheExportedView) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  const GraphDelta d = diff_views(ExportedView{}, v);
  PGraph g(C);
  EXPECT_TRUE(apply_delta(g, d, /*self=*/7));  // 7 not in the graph
  EXPECT_EQ(g.num_links(), v.links.size());
  for (const auto& [link, plist] : v.links) {
    ASSERT_TRUE(g.has_link(link.from, link.to));
    EXPECT_TRUE(g.link_data(link.from, link.to).plist == plist);
  }
  EXPECT_EQ(g.destinations(), v.destinations);
  // The assembled graph must reproduce the creator's paths.
  EXPECT_EQ(*g.derive_path(D), (Path{C, A, B, D}));
  EXPECT_EQ(*g.derive_path(Dp), (Path{C, D, Dp}));
}

TEST(ApplyDelta, DropsLinksPointingAtSelf) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  const GraphDelta d = diff_views(ExportedView{}, v);
  PGraph g(C);
  apply_delta(g, d, /*self=*/A);
  // C->A points at the importer and must be gone (Step 2).
  EXPECT_FALSE(g.has_link(C, A));
  EXPECT_TRUE(g.has_link(A, B));  // links *from* self survive
}

TEST(ApplyDelta, ImportFilterApplies) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  const GraphDelta d = diff_views(ExportedView{}, v);
  PGraph g(C);
  apply_delta(g, d, 7,
              [](NodeId from, NodeId to) { return !(from == C && to == D); });
  EXPECT_FALSE(g.has_link(C, D));
  EXPECT_TRUE(g.has_link(B, D));
}

TEST(ApplyDelta, IncrementalRemoveAndReset) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  PGraph g(C);
  apply_delta(g, diff_views(ExportedView{}, v), 7);

  GraphDelta removal;
  removal.removes.push_back(DirectedLink{C, D});
  removal.dest_removes.push_back(Dp);
  EXPECT_TRUE(apply_delta(g, removal, 7));
  EXPECT_FALSE(g.has_link(C, D));
  EXPECT_FALSE(g.is_destination(Dp));

  GraphDelta reset;
  reset.reset = true;
  EXPECT_TRUE(apply_delta(g, reset, 7));
  EXPECT_EQ(g.num_links(), 0u);
  EXPECT_FALSE(apply_delta(g, reset, 7));  // already empty: no change
}

TEST(ApplyDelta, UpsertReplacesPlist) {
  PGraph g(C);
  GraphDelta d1;
  PermissionList p1;
  p1.add(1, 2);
  d1.upserts.emplace_back(DirectedLink{A, B}, p1);
  apply_delta(g, d1, 7);
  GraphDelta d2;
  PermissionList p2;
  p2.add(3, 4);
  d2.upserts.emplace_back(DirectedLink{A, B}, p2);
  EXPECT_TRUE(apply_delta(g, d2, 7));
  EXPECT_FALSE(g.link_data(A, B).plist.permits(1, 2));
  EXPECT_TRUE(g.link_data(A, B).plist.permits(3, 4));
  // Same upsert again: no change.
  EXPECT_FALSE(apply_delta(g, d2, 7));
}

TEST(GraphDelta, ByteSizeAccounting) {
  GraphDelta d;
  EXPECT_EQ(d.byte_size(false), 16u);
  PermissionList p;
  p.add(1, 2);
  d.upserts.emplace_back(DirectedLink{A, B}, p);
  d.removes.push_back(DirectedLink{B, C});
  d.dest_adds.push_back(D);
  EXPECT_EQ(d.byte_size(false), 16u + (8u + 8u) + 8u + 4u);
  EXPECT_GT(d.byte_size(true), d.byte_size(false));  // tiny lists: bloom larger
}

}  // namespace
}  // namespace centaur::core

namespace centaur::core {
namespace {

// The paper's Claim 2 (S6.2): Centaur's P-graphs and Permission Lists carry
// exactly the same routing information as the equivalent selective
// path-vector set.  Constructively: derive the path set from an announced
// P-graph, run BuildGraph over it, and recover an equivalent announcement.
TEST(Privacy, PathVectorAndPGraphAreInterconvertible) {
  const PGraph local = build_local_pgraph(
      2, {{2, {2}}, {0, {2, 0}}, {1, {2, 0, 1}}, {3, {2, 0, 1, 3}},
          {4, {2, 3, 4}}});
  const ExportedView announced =
      make_export_view(local, [](NodeId) { return true; });

  // Receiver side: assemble the P-graph, derive the full path set — this
  // is the "path vector" view of the same information.
  PGraph assembled(2);
  apply_delta(assembled, diff_views(ExportedView{}, announced), /*self=*/9);
  std::map<NodeId, Path> path_vectors;
  for (const NodeId dest : assembled.destinations()) {
    const auto p = assembled.derive_path(dest);
    ASSERT_TRUE(p.has_value()) << dest;
    path_vectors[dest] = *p;
  }

  // Claim 2's construction: BuildGraph over the path-vector set recovers
  // the same links, destination marks, and Permission Lists.
  const PGraph rebuilt = build_local_pgraph(2, path_vectors);
  const ExportedView reannounced =
      make_export_view(rebuilt, [](NodeId) { return true; });
  EXPECT_EQ(announced, reannounced);
}

}  // namespace
}  // namespace centaur::core
