#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "centaur/announce.hpp"
#include "centaur/build_graph.hpp"
#include "wire/wire_format.hpp"

namespace centaur::core {
namespace {

constexpr NodeId A = 0, B = 1, C = 2, D = 3, Dp = 4;

std::map<NodeId, Path> fig4_selection() {
  return {
      {C, {C}},
      {A, {C, A}},
      {B, {C, A, B}},
      {D, {C, A, B, D}},
      {Dp, {C, D, Dp}},
  };
}

PGraph fig4_local() { return build_local_pgraph(C, fig4_selection()); }

DestFilter allow_all_dests() {
  return [](NodeId) { return true; };
}

std::vector<NodeId> dest_list(const ExportedView& v) {
  return std::vector<NodeId>(v.destinations.begin(), v.destinations.end());
}

TEST(ExportView, AllDestsExportsEverything) {
  const PGraph local = fig4_local();
  const ExportedView v = make_export_view(local, allow_all_dests());
  EXPECT_EQ(v.links.size(), local.num_links());
  EXPECT_EQ(dest_list(v), (std::vector<NodeId>{A, B, C, D, Dp}));
  // Multi-homed head links carry their permission lists on the wire.
  ASSERT_NE(v.find_link(B, D), nullptr);
  EXPECT_TRUE(v.find_link(B, D)->permits(D, kNoNextHop));
  ASSERT_NE(v.find_link(C, D), nullptr);
  EXPECT_TRUE(v.find_link(C, D)->permits(Dp, Dp));
  // Single-homed heads ship empty lists.
  ASSERT_NE(v.find_link(C, A), nullptr);
  EXPECT_TRUE(v.find_link(C, A)->empty());
}

TEST(ExportView, DestFilterPrunesLinksAndPermissions) {
  const PGraph local = fig4_local();
  // Only D' may be exported: the only links carrying D' traffic are C->D
  // and D->D'.
  const ExportedView v = make_export_view(
      local, [](NodeId dest) { return dest == Dp; });
  EXPECT_EQ(dest_list(v), (std::vector<NodeId>{Dp}));
  EXPECT_EQ(v.links.size(), 2u);
  EXPECT_TRUE(v.has_link(C, D));
  EXPECT_TRUE(v.has_link(D, Dp));
  // The C->D permission list keeps only the D' entry.
  EXPECT_TRUE(v.find_link(C, D)->permits(Dp, Dp));
  EXPECT_EQ(v.find_link(C, D)->dest_count(), 1u);
}

TEST(ExportView, LinkFilterHidesSpecificLinks) {
  const PGraph local = fig4_local();
  const ExportedView v = make_export_view(
      local, allow_all_dests(),
      [](NodeId from, NodeId to) { return !(from == C && to == D); });
  EXPECT_FALSE(v.has_link(C, D));
  EXPECT_TRUE(v.has_link(B, D));
}

TEST(Diff, EmptyToFullIsAllUpserts) {
  const ExportedView after = make_export_view(fig4_local(), allow_all_dests());
  const GraphDelta d = diff_views(ExportedView{}, after);
  EXPECT_EQ(d.upserts.size(), after.links.size());
  EXPECT_TRUE(d.removes.empty());
  EXPECT_EQ(d.dest_adds.size(), after.destinations.size());
  EXPECT_FALSE(d.empty());
  // Sections come out in canonical (sorted-ascending) wire order.
  for (std::size_t i = 1; i < d.upserts.size(); ++i) {
    EXPECT_LT(d.upserts[i - 1].first, d.upserts[i].first);
  }
  for (std::size_t i = 1; i < d.dest_adds.size(); ++i) {
    EXPECT_LT(d.dest_adds[i - 1], d.dest_adds[i]);
  }
}

TEST(Diff, IdenticalViewsYieldEmptyDelta) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  EXPECT_TRUE(diff_views(v, v).empty());
}

TEST(Diff, DetectsRemovalsAndPlistChanges) {
  const ExportedView before = make_export_view(fig4_local(), allow_all_dests());
  ExportedView after = before;
  after.links.erase(pack_link(D, Dp));
  util::sorted_erase(after.destinations, Dp);
  after.links[pack_link(C, D)].add(99, 98);  // plist change
  const GraphDelta d = diff_views(before, after);
  ASSERT_EQ(d.removes.size(), 1u);
  EXPECT_EQ(d.removes[0], (DirectedLink{D, Dp}));
  ASSERT_EQ(d.upserts.size(), 1u);
  EXPECT_EQ(d.upserts[0].first, (DirectedLink{C, D}));
  ASSERT_EQ(d.dest_removes.size(), 1u);
  EXPECT_EQ(d.dest_removes[0], Dp);
  EXPECT_TRUE(d.dest_adds.empty());
}

TEST(Diff, PlistOnlyChangeYieldsSingleUpsert) {
  const ExportedView before = make_export_view(fig4_local(), allow_all_dests());
  ExportedView after = before;
  // Same link set, same destinations — only one Permission List differs.
  after.links[pack_link(B, D)].add(77, kNoNextHop);
  const GraphDelta d = diff_views(before, after);
  EXPECT_TRUE(d.removes.empty());
  EXPECT_TRUE(d.dest_adds.empty());
  EXPECT_TRUE(d.dest_removes.empty());
  ASSERT_EQ(d.upserts.size(), 1u);
  EXPECT_EQ(d.upserts[0].first, (DirectedLink{B, D}));
  EXPECT_TRUE(d.upserts[0].second.permits(77, kNoNextHop));
}

TEST(ApplyDelta, ReconstructsTheExportedView) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  const GraphDelta d = diff_views(ExportedView{}, v);
  PGraph g(C);
  EXPECT_TRUE(apply_delta(g, d, /*self=*/7));  // 7 not in the graph
  EXPECT_EQ(g.num_links(), v.links.size());
  for (const auto& [key, plist] : v.links) {
    const DirectedLink link = unpack_link(key);
    ASSERT_TRUE(g.has_link(link.from, link.to));
    EXPECT_TRUE(g.link_data(link.from, link.to).plist == plist);
  }
  EXPECT_EQ(std::vector<NodeId>(g.destinations().begin(),
                                g.destinations().end()),
            dest_list(v));
  // The assembled graph must reproduce the creator's paths.
  EXPECT_EQ(*g.derive_path(D), (Path{C, A, B, D}));
  EXPECT_EQ(*g.derive_path(Dp), (Path{C, D, Dp}));
}

TEST(ApplyDelta, DropsLinksPointingAtSelf) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  const GraphDelta d = diff_views(ExportedView{}, v);
  PGraph g(C);
  apply_delta(g, d, /*self=*/A);
  // C->A points at the importer and must be gone (Step 2).
  EXPECT_FALSE(g.has_link(C, A));
  EXPECT_TRUE(g.has_link(A, B));  // links *from* self survive
}

TEST(ApplyDelta, ImportFilterApplies) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  const GraphDelta d = diff_views(ExportedView{}, v);
  PGraph g(C);
  apply_delta(g, d, 7,
              [](NodeId from, NodeId to) { return !(from == C && to == D); });
  EXPECT_FALSE(g.has_link(C, D));
  EXPECT_TRUE(g.has_link(B, D));
}

TEST(ApplyDelta, IncrementalRemoveAndReset) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  PGraph g(C);
  apply_delta(g, diff_views(ExportedView{}, v), 7);

  GraphDelta removal;
  removal.removes.push_back(DirectedLink{C, D});
  removal.dest_removes.push_back(Dp);
  EXPECT_TRUE(apply_delta(g, removal, 7));
  EXPECT_FALSE(g.has_link(C, D));
  EXPECT_FALSE(g.is_destination(Dp));

  GraphDelta reset;
  reset.reset = true;
  EXPECT_TRUE(apply_delta(g, reset, 7));
  EXPECT_EQ(g.num_links(), 0u);
  EXPECT_FALSE(apply_delta(g, reset, 7));  // already empty: no change
}

TEST(ApplyDelta, ResetWithContentReplacesTheGraph) {
  const ExportedView v = make_export_view(fig4_local(), allow_all_dests());
  PGraph g(C);
  apply_delta(g, diff_views(ExportedView{}, v), 7);
  ASSERT_GT(g.num_links(), 1u);

  // A reset delta carrying content (the session-restart snapshot) must
  // leave exactly its own content, nothing of the prior state.
  GraphDelta snapshot;
  snapshot.reset = true;
  snapshot.upserts.emplace_back(DirectedLink{A, B}, PermissionList{});
  snapshot.dest_adds.push_back(B);
  EXPECT_TRUE(apply_delta(g, snapshot, 7));
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_TRUE(g.has_link(A, B));
  EXPECT_FALSE(g.has_link(C, D));
  EXPECT_EQ(std::vector<NodeId>(g.destinations().begin(),
                                g.destinations().end()),
            (std::vector<NodeId>{B}));
}

TEST(ApplyDelta, UpsertReplacesPlist) {
  PGraph g(C);
  GraphDelta d1;
  PermissionList p1;
  p1.add(1, 2);
  d1.upserts.emplace_back(DirectedLink{A, B}, p1);
  apply_delta(g, d1, 7);
  GraphDelta d2;
  PermissionList p2;
  p2.add(3, 4);
  d2.upserts.emplace_back(DirectedLink{A, B}, p2);
  EXPECT_TRUE(apply_delta(g, d2, 7));
  EXPECT_FALSE(g.link_data(A, B).plist.permits(1, 2));
  EXPECT_TRUE(g.link_data(A, B).plist.permits(3, 4));
  // Same upsert again: no change.
  EXPECT_FALSE(apply_delta(g, d2, 7));
}

TEST(ApplyDelta, SameLinkUpsertedAndRemovedInOneDelta) {
  // A malformed-but-possible delta naming one link in both sections:
  // removes apply before upserts, so the upsert is authoritative — the
  // link ends up present with the upsert's Permission List.
  PGraph g(C);
  GraphDelta d0;
  PermissionList old_plist;
  old_plist.add(1, 2);
  d0.upserts.emplace_back(DirectedLink{A, B}, old_plist);
  apply_delta(g, d0, 7);

  GraphDelta d;
  PermissionList new_plist;
  new_plist.add(3, 4);
  d.removes.push_back(DirectedLink{A, B});
  d.upserts.emplace_back(DirectedLink{A, B}, new_plist);
  EXPECT_TRUE(apply_delta(g, d, 7));
  ASSERT_TRUE(g.has_link(A, B));
  EXPECT_TRUE(g.link_data(A, B).plist.permits(3, 4));
  EXPECT_FALSE(g.link_data(A, B).plist.permits(1, 2));
}

TEST(GraphDelta, ByteSizeIsExactEncodedLength) {
  GraphDelta d;
  // Empty delta: version + flags + four zero section counts.
  EXPECT_EQ(d.byte_size(false), 6u);
  EXPECT_EQ(d.byte_size(true), 6u);

  PermissionList p;
  p.add(1, 2);
  d.upserts.emplace_back(DirectedLink{A, B}, p);
  d.removes.push_back(DirectedLink{B, C});
  d.dest_adds.push_back(D);
  d.reset = true;
  for (const bool bloom : {false, true}) {
    const auto buf = wire::encode(
        d, bloom ? wire::PlistEncoding::kBloom : wire::PlistEncoding::kExplicit);
    EXPECT_EQ(d.byte_size(bloom), buf.size()) << "bloom=" << bloom;
  }
  // Tiny destination lists: the Bloom encoding's fixed-size filters lose.
  EXPECT_GT(d.byte_size(true), d.byte_size(false));
}

// ---------------------------------------------------------- PendingDelta --

PermissionList plist_of(NodeId dest, NodeId next) {
  PermissionList p;
  p.add(dest, next);
  return p;
}

TEST(PendingDelta, AddThenRemoveCancels) {
  PendingDelta pending;
  pending.record_upsert(DirectedLink{A, B}, plist_of(1, 2),
                        /*receiver_has_link=*/false);
  pending.record_remove(DirectedLink{A, B});
  EXPECT_TRUE(pending.empty());
  EXPECT_TRUE(pending.take().empty());
}

TEST(PendingDelta, ChangeThenRemoveCollapsesToRemove) {
  PendingDelta pending;
  pending.record_upsert(DirectedLink{A, B}, plist_of(1, 2),
                        /*receiver_has_link=*/true);
  pending.record_remove(DirectedLink{A, B});
  const GraphDelta d = pending.take();
  EXPECT_TRUE(d.upserts.empty());
  ASSERT_EQ(d.removes.size(), 1u);
  EXPECT_EQ(d.removes[0], (DirectedLink{A, B}));
}

TEST(PendingDelta, RemoveThenReAddBecomesUpsert) {
  PendingDelta pending;
  pending.record_remove(DirectedLink{A, B});
  pending.record_upsert(DirectedLink{A, B}, plist_of(3, 4),
                        /*receiver_has_link=*/false);
  const GraphDelta d = pending.take();
  EXPECT_TRUE(d.removes.empty());
  ASSERT_EQ(d.upserts.size(), 1u);
  EXPECT_TRUE(d.upserts[0].second.permits(3, 4));
}

TEST(PendingDelta, LatestPlistWins) {
  PendingDelta pending;
  pending.record_upsert(DirectedLink{A, B}, plist_of(1, 2), false);
  pending.record_upsert(DirectedLink{A, B}, plist_of(3, 4), true);
  const GraphDelta d = pending.take();
  ASSERT_EQ(d.upserts.size(), 1u);
  EXPECT_TRUE(d.upserts[0].second.permits(3, 4));
  EXPECT_FALSE(d.upserts[0].second.permits(1, 2));
}

TEST(PendingDelta, DestAddRemoveCancelsBothOrders) {
  PendingDelta pending;
  pending.record_dest_add(D);
  pending.record_dest_remove(D);
  EXPECT_TRUE(pending.empty());
  pending.record_dest_remove(Dp);
  pending.record_dest_add(Dp);
  EXPECT_TRUE(pending.empty());
}

TEST(PendingDelta, TakeYieldsCanonicalSortedSectionsAndClears) {
  PendingDelta pending;
  pending.record_upsert(DirectedLink{C, D}, plist_of(1, 2), false);
  pending.record_upsert(DirectedLink{A, B}, plist_of(3, 4), false);
  pending.record_remove(DirectedLink{B, C});
  pending.record_dest_add(Dp);
  pending.record_dest_add(D);
  const GraphDelta d = pending.take();
  ASSERT_EQ(d.upserts.size(), 2u);
  EXPECT_EQ(d.upserts[0].first, (DirectedLink{A, B}));
  EXPECT_EQ(d.upserts[1].first, (DirectedLink{C, D}));
  ASSERT_EQ(d.removes.size(), 1u);
  EXPECT_EQ(d.dest_adds, (std::vector<NodeId>{D, Dp}));
  EXPECT_TRUE(pending.empty());
  EXPECT_TRUE(pending.take().empty());
}

}  // namespace
}  // namespace centaur::core

namespace centaur::core {
namespace {

// The paper's Claim 2 (S6.2): Centaur's P-graphs and Permission Lists carry
// exactly the same routing information as the equivalent selective
// path-vector set.  Constructively: derive the path set from an announced
// P-graph, run BuildGraph over it, and recover an equivalent announcement.
TEST(Privacy, PathVectorAndPGraphAreInterconvertible) {
  const PGraph local = build_local_pgraph(
      2, std::map<NodeId, Path>{{2, {2}}, {0, {2, 0}}, {1, {2, 0, 1}},
                                {3, {2, 0, 1, 3}}, {4, {2, 3, 4}}});
  const ExportedView announced =
      make_export_view(local, [](NodeId) { return true; });

  // Receiver side: assemble the P-graph, derive the full path set — this
  // is the "path vector" view of the same information.
  PGraph assembled(2);
  apply_delta(assembled, diff_views(ExportedView{}, announced), /*self=*/9);
  std::map<NodeId, Path> path_vectors;
  for (const NodeId dest : assembled.destinations()) {
    const auto p = assembled.derive_path(dest);
    ASSERT_TRUE(p.has_value()) << dest;
    path_vectors[dest] = *p;
  }

  // Claim 2's construction: BuildGraph over the path-vector set recovers
  // the same links, destination marks, and Permission Lists.
  const PGraph rebuilt = build_local_pgraph(2, path_vectors);
  const ExportedView reannounced =
      make_export_view(rebuilt, [](NodeId) { return true; });
  EXPECT_EQ(announced, reannounced);
}

}  // namespace
}  // namespace centaur::core
