#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace centaur::sim {
namespace {

using topo::AsGraph;
using topo::NodeId;
using topo::Relationship;

// ---------------------------------------------------------- Simulator -----

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(0.3, [&] { order.push_back(3); });
  sim.schedule(0.1, [&] { order.push_back(1); });
  sim.schedule(0.2, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 0.3);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(0.5, [&] { order.push_back(1); });
  sim.schedule(0.5, [&] { order.push_back(2); });
  sim.schedule(0.5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(0.1, [&] {
    ++fired;
    sim.schedule(0.1, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 0.2);
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(0.1, [&] { ++fired; });
  sim.schedule(0.9, [&] { ++fired; });
  sim.run_until(0.5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.5);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsNegativeDelayAndPast) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
  sim.schedule(0.5, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.1, [] {}), std::invalid_argument);
}

TEST(Simulator, EventBudgetGuardsLivelock) {
  Simulator sim;
  std::function<void()> loop = [&] { sim.schedule(0.001, loop); };
  sim.schedule(0, loop);
  EXPECT_THROW(sim.run(100), std::runtime_error);
}

TEST(Simulator, AcceptsMoveOnlyCallables) {
  // Event callbacks are UniqueFunctions, so capturing a move-only payload
  // works (std::function would reject this lambda outright).
  Simulator sim;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  sim.schedule(0.1, [p = std::move(payload), &seen] { seen = *p + 1; });
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(Simulator, ExecutedCountsAcrossRuns) {
  Simulator sim;
  sim.schedule(0.1, [] {});
  sim.schedule(0.2, [] {});
  sim.schedule(0.9, [] {});
  EXPECT_EQ(sim.executed(), 0u);
  sim.run_until(0.5);
  EXPECT_EQ(sim.executed(), 2u);
  sim.run();
  EXPECT_EQ(sim.executed(), 3u);
  sim.schedule(0.1, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 4u);  // lifetime total, not per-run
}

TEST(Simulator, ZeroDelayBurstsKeepInsertionOrder) {
  // Zero-delay events scheduled from inside an event take the FIFO burst
  // fast path; their observable order must still interleave correctly with
  // same-time events that were already sitting in the heap.
  Simulator sim;
  std::vector<int> order;
  sim.schedule(0.5, [&] {
    order.push_back(1);
    sim.schedule(0, [&] {
      order.push_back(3);
      sim.schedule(0, [&] { order.push_back(5); });
    });
    sim.schedule(0, [&] { order.push_back(4); });
  });
  sim.schedule(0.5, [&] { order.push_back(2); });  // heap, same timestamp
  sim.schedule(0.7, [&] { order.push_back(6); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  EXPECT_DOUBLE_EQ(sim.now(), 0.7);
}

TEST(Simulator, BurstEventsVisibleInPendingAndRunUntil) {
  Simulator sim;
  int fired = 0;
  sim.schedule(0.1, [&] {
    ++fired;
    sim.schedule(0, [&] { ++fired; });
    EXPECT_GE(sim.pending(), 1u);
  });
  sim.run_until(0.2);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunUntilDrainsBurstAtExactDeadline) {
  // An event executing exactly at the deadline schedules a same-time burst
  // follow-up (and that one another): all of them must drain before
  // run_until returns — the deadline gate compares the burst's timestamp
  // (== deadline), not "deadline already reached, stop".
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(0.5, [&] {
    order.push_back(1);
    sim.schedule(0, [&] {
      order.push_back(2);
      sim.schedule(0, [&] { order.push_back(3); });
    });
  });
  sim.schedule_at(0.9, [&] { order.push_back(9); });
  EXPECT_EQ(sim.run_until(0.5), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 0.5);
  EXPECT_EQ(sim.pending(), 1u);  // only the 0.9 heap event survives
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 9}));
}

TEST(Simulator, RunUntilPastDeadlineLeavesBurstQueued) {
  // A burst event scheduled while the simulator is idle (e.g. a driver
  // calling set_link_state between runs) sits at now_; a run_until whose
  // deadline is already in the past must leave it queued, not strand-drop
  // or execute it.
  Simulator sim;
  sim.schedule_at(0.5, [] {});
  sim.run();
  int fired = 0;
  sim.schedule(0, [&] { ++fired; });  // burst event at now_ == 0.5
  EXPECT_EQ(sim.run_until(0.3), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.5);  // a past deadline never rewinds time
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunUntilExactDeadlineBurstUnderBatching) {
  // Same boundary case through the parallel batch executor.
  Simulator sim;
  sim.set_intra_threads(4);
  std::vector<int> log_a, log_b;
  sim.schedule_at(0.5, [&] {
    sim.schedule_tagged(0, 0, [&] { log_a.push_back(1); });
    sim.schedule_tagged(0, 1, [&] { log_b.push_back(2); });
  });
  sim.run_until(0.5);
  EXPECT_EQ(log_a, (std::vector<int>{1}));
  EXPECT_EQ(log_b, (std::vector<int>{2}));
  EXPECT_TRUE(sim.idle());
}

// ---------------------------------------------- Same-instant batching -----

// Runs one scripted program on a simulator with the given intra-thread
// count and returns every observable: per-node event logs plus the shared
// commit-ordered log (appended via deferred zero-delay events).
struct BatchObservation {
  std::vector<std::vector<int>> node_logs;
  std::vector<int> shared_log;
  std::uint64_t executed = 0;
  Time final_now = 0;

  bool operator==(const BatchObservation& o) const {
    return node_logs == o.node_logs && shared_log == o.shared_log &&
           executed == o.executed && final_now == o.final_now;
  }
};

BatchObservation run_batch_program(std::size_t threads, std::size_t nodes) {
  Simulator sim;
  sim.set_intra_threads(threads);
  BatchObservation obs;
  obs.node_logs.resize(nodes);
  // Three waves at one instant: a tagged event per node, each appending to
  // its node-local log and scheduling (a) a same-instant tagged follow-up
  // and (b) an untagged shared-log append whose execution order proves the
  // commit replays in seq order.
  for (std::size_t n = 0; n < nodes; ++n) {
    sim.schedule_at(0.25, [&, n] {
      obs.node_logs[n].push_back(static_cast<int>(n));
      sim.schedule_tagged(0, static_cast<std::uint32_t>(n), [&, n] {
        obs.node_logs[n].push_back(100 + static_cast<int>(n));
      });
      sim.schedule(0, [&, n] { obs.shared_log.push_back(static_cast<int>(n)); });
    });
  }
  // The wave above is untagged (schedule_at), so it runs serially with its
  // burst split by untagged barriers; the second wave is tagged at a later
  // instant and exercises the parallel batch path proper.
  for (std::size_t n = 0; n < nodes; ++n) {
    sim.schedule_tagged(0.5 - 0.25, static_cast<std::uint32_t>(n), [&, n] {
      obs.node_logs[n].push_back(200 + static_cast<int>(n));
      sim.schedule_tagged(0, static_cast<std::uint32_t>(n), [&, n] {
        obs.node_logs[n].push_back(300 + static_cast<int>(n));
      });
      sim.schedule(0, [&, n] {
        obs.shared_log.push_back(1000 + static_cast<int>(n));
      });
    });
  }
  sim.run();
  obs.executed = sim.executed();
  obs.final_now = sim.now();
  return obs;
}

TEST(Simulator, BatchedExecutionIsBitIdenticalToSerial) {
  const BatchObservation serial = run_batch_program(1, 8);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    const BatchObservation parallel = run_batch_program(threads, 8);
    EXPECT_TRUE(serial == parallel) << "threads=" << threads;
  }
}

TEST(Simulator, UntaggedEventActsAsBatchBarrier) {
  // tagged(a) | untagged | tagged(b) at one instant: the untagged event
  // must not be reordered around the tagged ones.
  Simulator sim;
  sim.set_intra_threads(4);
  std::vector<int> order;
  sim.schedule_at(0.1, [&] {
    sim.schedule_tagged(0, 0, [&] { order.push_back(1); });
    sim.schedule(0, [&] { order.push_back(2); });
    sim.schedule_tagged(0, 1, [&] { order.push_back(3); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, BatchedEventExceptionPropagatesDeterministically) {
  // The lowest-seq failing event's exception surfaces, regardless of which
  // worker lane hit it first; commit ops of later events are dropped.  Five
  // distinct nodes keep the batch above the pool-dispatch threshold, and
  // the second thrower (node 3) must always lose to node 1.
  for (const std::size_t threads : {1u, 4u}) {
    Simulator sim;
    sim.set_intra_threads(threads);
    std::vector<int> committed;
    sim.schedule_at(0.1, [&] {
      sim.schedule_tagged(0, 0, [&] {
        sim.schedule(0, [&] { committed.push_back(0); });
      });
      sim.schedule_tagged(0, 1,
                          [&]() { throw std::runtime_error("node 1 died"); });
      sim.schedule_tagged(0, 2, [&] {
        sim.schedule(0, [&] { committed.push_back(2); });
      });
      sim.schedule_tagged(0, 3,
                          [&]() { throw std::runtime_error("node 3 died"); });
      sim.schedule_tagged(0, 4, [&] {
        sim.schedule(0, [&] { committed.push_back(4); });
      });
    });
    try {
      sim.run();
      FAIL() << "expected the node-1 failure to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "node 1 died") << "threads=" << threads;
    }
    // Only the pre-failure event's deferred op may have been committed (it
    // is then scheduled but never run — run() threw).
    EXPECT_TRUE(committed.empty()) << "threads=" << threads;
  }
}

TEST(Simulator, SetIntraThreadsClampsToOne) {
  Simulator sim;
  sim.set_intra_threads(0);
  EXPECT_EQ(sim.intra_threads(), 1u);
  sim.set_intra_threads(3);
  EXPECT_EQ(sim.intra_threads(), 3u);
}

TEST(Simulator, ReserveDoesNotDisturbOrdering) {
  Simulator sim;
  sim.reserve(64);
  std::vector<int> order;
  sim.schedule(0.2, [&] { order.push_back(2); });
  sim.schedule(0.1, [&] { order.push_back(1); });
  sim.reserve(1024);  // mid-stream re-reserve must keep the heap intact
  sim.schedule(0.3, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ------------------------------------------------------------ Network -----

class PingMessage : public Message {
 public:
  explicit PingMessage(int hops_left) : hops_left_(hops_left) {}
  int hops_left() const { return hops_left_; }
  std::size_t byte_size() const override { return 10; }
  std::string describe() const override { return "ping"; }

 private:
  int hops_left_;
};

/// Forwards pings along the line topology until hops run out.
class PingNode : public Node {
 public:
  void start() override {}
  void on_message(NodeId from, const MessagePtr& msg) override {
    last_from = from;
    ++received;
    const auto* ping = dynamic_cast<const PingMessage*>(msg.get());
    ASSERT_NE(ping, nullptr);
    if (ping->hops_left() > 0) {
      for (const topo::Neighbor& nb : net().graph().neighbors(self())) {
        if (nb.node != from) {
          net().send(self(), nb.node,
                     std::make_shared<PingMessage>(ping->hops_left() - 1));
        }
      }
    }
  }
  void on_link_change(NodeId, bool up) override { link_events += up ? 1 : -1; }

  int received = 0;
  int link_events = 0;
  NodeId last_from = topo::kInvalidNode;
};

struct NetFixture {
  AsGraph g;
  util::Rng rng{77};
  std::unique_ptr<Network> net;
  std::vector<PingNode*> nodes;

  explicit NetFixture(std::size_t n) : g(n) {
    for (NodeId v = 0; v + 1 < n; ++v) g.add_link(v, v + 1, Relationship::kPeer);
    net = std::make_unique<Network>(g, rng, 0.001, 0.002);
    for (NodeId v = 0; v < n; ++v) {
      auto node = std::make_unique<PingNode>();
      nodes.push_back(node.get());
      net->attach(v, std::move(node));
    }
    net->start_all_and_converge();
  }
};

TEST(Network, DeliversWithDelayAndCounts) {
  NetFixture f(3);
  f.net->mark();
  f.net->send(0, 1, std::make_shared<PingMessage>(1));
  f.net->run_to_convergence();
  EXPECT_EQ(f.nodes[1]->received, 1);
  EXPECT_EQ(f.nodes[2]->received, 1);  // forwarded
  EXPECT_EQ(f.net->window().messages_sent, 2u);
  EXPECT_EQ(f.net->window().messages_delivered, 2u);
  EXPECT_EQ(f.net->window().bytes_sent, 20u);
  EXPECT_GT(f.net->window_convergence_time(), 0.0);
  EXPECT_LT(f.net->window_convergence_time(), 0.005);
}

TEST(Network, SendRequiresAdjacency) {
  NetFixture f(3);
  EXPECT_THROW(f.net->send(0, 2, std::make_shared<PingMessage>(0)),
               std::invalid_argument);
}

TEST(Network, DownLinkDropsMessages) {
  NetFixture f(2);
  f.net->set_link_state(0, false);
  f.net->run_to_convergence();
  EXPECT_EQ(f.nodes[0]->link_events, -1);
  EXPECT_EQ(f.nodes[1]->link_events, -1);

  f.net->mark();
  f.net->send(0, 1, std::make_shared<PingMessage>(0));
  f.net->run_to_convergence();
  EXPECT_EQ(f.nodes[1]->received, 0);
  EXPECT_EQ(f.net->window().messages_dropped, 1u);
  EXPECT_EQ(f.net->window().messages_delivered, 0u);
}

TEST(Network, InFlightMessagesDropWhenLinkFails) {
  NetFixture f(2);
  f.net->mark();
  // Send, then take the link down before the delay elapses.
  f.net->send(0, 1, std::make_shared<PingMessage>(0));
  f.net->set_link_state(0, false);
  f.net->run_to_convergence();
  EXPECT_EQ(f.nodes[1]->received, 0);
  EXPECT_EQ(f.net->window().messages_dropped, 1u);
}

TEST(Network, LinkFlapNotifiesBothEndpoints) {
  NetFixture f(2);
  f.net->set_link_state(0, false);
  f.net->set_link_state(0, true);
  f.net->run_to_convergence();
  EXPECT_EQ(f.nodes[0]->link_events, 0);  // -1 then +1
  EXPECT_EQ(f.nodes[1]->link_events, 0);
}

TEST(Network, RedundantLinkStateChangeIsNoop) {
  NetFixture f(2);
  f.net->set_link_state(0, true);  // already up
  f.net->run_to_convergence();
  EXPECT_EQ(f.nodes[0]->link_events, 0);
}

TEST(Network, DelaysAreDeterministicPerSeed) {
  AsGraph g(2);
  g.add_link(0, 1, Relationship::kPeer);
  util::Rng r1(5), r2(5);
  AsGraph g2 = g;
  Network n1(g, r1), n2(g2, r2);
  EXPECT_DOUBLE_EQ(n1.link_delay(0), n2.link_delay(0));
  EXPECT_GE(n1.link_delay(0), 0.0);
  EXPECT_LT(n1.link_delay(0), 0.005);
}

TEST(Network, MarkResetsWindow) {
  NetFixture f(2);
  f.net->send(0, 1, std::make_shared<PingMessage>(0));
  f.net->run_to_convergence();
  f.net->mark();
  EXPECT_EQ(f.net->window().messages_sent, 0u);
  EXPECT_EQ(f.net->window_convergence_time(), 0.0);
}

}  // namespace
}  // namespace centaur::sim
