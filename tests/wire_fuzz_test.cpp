// Deterministic fuzz harness for the wire decoder (DESIGN.md §6).
//
// Contract under test: for ANY byte string, decode() either throws
// DecodeError or returns a well-formed Decoded — it never crashes, loops,
// over-reads the buffer, or trips a sanitizer (this file runs under the
// ASan/UBSan CI job like every other test).  The corpus is seeded from the
// same truncation family wire_test.cpp checks (every prefix of a valid
// encoding) and expanded with byte flips, splices, and raw garbage; the
// mutation stream is a pure function of the fixed seeds, so a failure
// reproduces bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "centaur/permission_list.hpp"
#include "wire/wire_format.hpp"

namespace centaur::wire {
namespace {

using core::GraphDelta;
using core::NodeId;
using core::PermissionList;

// Canonical random delta, mirroring wire_test.cpp's generator: sorted
// unique link keys / node ids, random Permission Lists (kNoNextHop entries
// and empty lists included).
GraphDelta random_delta(std::mt19937& rng) {
  std::uniform_int_distribution<std::uint32_t> node(0, 499);
  auto random_link_keys = [&](std::size_t max_n) {
    std::set<std::uint64_t> keys;
    const std::size_t n = rng() % (max_n + 1);
    while (keys.size() < n) {
      keys.insert(core::pack_link(node(rng), node(rng)));
    }
    return keys;
  };
  auto random_nodes = [&](std::size_t max_n) {
    std::set<NodeId> ids;
    const std::size_t n = rng() % (max_n + 1);
    while (ids.size() < n) ids.insert(node(rng));
    return ids;
  };

  GraphDelta d;
  d.reset = rng() % 4 == 0;
  for (const std::uint64_t key : random_link_keys(6)) {
    PermissionList plist;
    const std::size_t entries = rng() % 4;
    for (std::size_t e = 0; e < entries; ++e) {
      const NodeId next = rng() % 8 == 0 ? core::kNoNextHop : node(rng);
      const std::size_t dests = 1 + rng() % 5;
      for (std::size_t k = 0; k < dests; ++k) plist.add(node(rng), next);
    }
    d.upserts.emplace_back(core::unpack_link(key), std::move(plist));
  }
  for (const std::uint64_t key : random_link_keys(5)) {
    d.removes.push_back(core::unpack_link(key));
  }
  for (const NodeId id : random_nodes(5)) d.dest_adds.push_back(id);
  for (const NodeId id : random_nodes(5)) d.dest_removes.push_back(id);
  return d;
}

/// Feeds `buf` to the decoder.  Accepts exactly two outcomes: DecodeError,
/// or a successful decode whose re-encoding is itself decodable (i.e. the
/// decoder only ever produces states the encoder considers well-formed).
/// Anything else — another exception type, a crash, a sanitizer report —
/// fails the test.
void expect_reject_or_roundtrip(const std::vector<std::uint8_t>& buf,
                                const std::string& context) {
  Decoded out;
  try {
    out = decode(buf.data(), buf.size());
  } catch (const DecodeError&) {
    return;  // rejected cleanly
  }
  EXPECT_LE(out.bytes_consumed, buf.size()) << context;
  if (out.encoding == PlistEncoding::kBloom) {
    // Bloom decodes park the plists in the sidecar; re-encoding the delta
    // would drop them, so well-formedness here is just the bounds check
    // plus one sidecar row per upsert.
    EXPECT_EQ(out.bloom_plists.size(), out.delta.upserts.size()) << context;
    return;
  }
  std::vector<std::uint8_t> reencoded;
  try {
    reencoded = encode(out.delta, out.encoding);
  } catch (...) {
    FAIL() << context << ": decoder accepted a delta the encoder rejects";
  }
  try {
    (void)decode(reencoded.data(), reencoded.size());
  } catch (const DecodeError& e) {
    FAIL() << context << ": re-encoded accepted delta fails to decode: "
           << e.what();
  }
}

std::string hex(const std::vector<std::uint8_t>& buf) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(buf.size() * 2);
  for (const std::uint8_t b : buf) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xF]);
  }
  return s;
}

TEST(WireFuzz, EveryTruncationRejectsOrRoundtrips) {
  // The seed family from wire_test.cpp: cutting a valid encoding at every
  // byte offset.  (Truncations of a valid message should virtually always
  // reject; a prefix that happens to parse — e.g. cutting exactly at a
  // section boundary of a smaller message — must still roundtrip.)
  std::mt19937 rng(0xF0220806);
  for (int trial = 0; trial < 40; ++trial) {
    const GraphDelta d = random_delta(rng);
    for (const PlistEncoding enc :
         {PlistEncoding::kExplicit, PlistEncoding::kBloom}) {
      const std::vector<std::uint8_t> full = encode(d, enc);
      for (std::size_t cut = 0; cut < full.size(); ++cut) {
        const std::vector<std::uint8_t> buf(full.begin(),
                                            full.begin() + cut);
        expect_reject_or_roundtrip(
            buf, "trial " + std::to_string(trial) + " cut " +
                     std::to_string(cut) + " of " + hex(full));
      }
    }
  }
}

TEST(WireFuzz, ByteFlipMutationsNeverCrash) {
  std::mt19937 rng(0xB17F11B);
  for (int trial = 0; trial < 60; ++trial) {
    const GraphDelta d = random_delta(rng);
    const PlistEncoding enc =
        rng() % 2 == 0 ? PlistEncoding::kExplicit : PlistEncoding::kBloom;
    const std::vector<std::uint8_t> full = encode(d, enc);
    if (full.empty()) continue;
    // Single-byte flips at every offset (exhaustive for the first bytes,
    // where the header/counters live, random elsewhere to bound runtime).
    for (std::size_t pos = 0; pos < full.size(); ++pos) {
      std::vector<std::uint8_t> buf = full;
      buf[pos] ^= static_cast<std::uint8_t>(1 + rng() % 255);
      expect_reject_or_roundtrip(buf, "flip at " + std::to_string(pos) +
                                          " of " + hex(full));
    }
    // A handful of multi-site mutations per message.
    for (int round = 0; round < 8; ++round) {
      std::vector<std::uint8_t> buf = full;
      const std::size_t sites = 1 + rng() % 4;
      for (std::size_t s = 0; s < sites; ++s) {
        buf[rng() % buf.size()] = static_cast<std::uint8_t>(rng());
      }
      expect_reject_or_roundtrip(buf, "multiflip of " + hex(full));
    }
  }
}

TEST(WireFuzz, SplicedAndGarbageInputNeverCrashes) {
  std::mt19937 rng(0x5EEDF00D);
  std::vector<std::vector<std::uint8_t>> corpus;
  for (int i = 0; i < 10; ++i) {
    const GraphDelta d = random_delta(rng);
    corpus.push_back(encode(d, PlistEncoding::kExplicit));
    corpus.push_back(encode(d, PlistEncoding::kBloom));
  }
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> buf;
    switch (trial % 3) {
      case 0: {  // pure garbage, assorted lengths
        const std::size_t n = rng() % 64;
        for (std::size_t i = 0; i < n; ++i) {
          buf.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
      }
      case 1: {  // splice: head of one valid message + tail of another
        const auto& a = corpus[rng() % corpus.size()];
        const auto& b = corpus[rng() % corpus.size()];
        const std::size_t cut_a = a.empty() ? 0 : rng() % a.size();
        const std::size_t cut_b = b.empty() ? 0 : rng() % b.size();
        buf.assign(a.begin(), a.begin() + cut_a);
        buf.insert(buf.end(), b.begin() + cut_b, b.end());
        break;
      }
      default: {  // valid message with trailing garbage
        buf = corpus[rng() % corpus.size()];
        const std::size_t n = 1 + rng() % 8;
        for (std::size_t i = 0; i < n; ++i) {
          buf.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
      }
    }
    expect_reject_or_roundtrip(buf, "trial " + std::to_string(trial) +
                                        " input " + hex(buf));
  }
  // Degenerate inputs.
  expect_reject_or_roundtrip({}, "empty");
  expect_reject_or_roundtrip({kWireVersion}, "version only");
  expect_reject_or_roundtrip(std::vector<std::uint8_t>(4096, 0xFF),
                             "all-ones page");
  expect_reject_or_roundtrip(std::vector<std::uint8_t>(4096, 0x00),
                             "all-zero page");
}

}  // namespace
}  // namespace centaur::wire
