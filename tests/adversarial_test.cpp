// Adversarial scenario layer (DESIGN.md §15): the route-leak /
// interception / policy-churn packs, the per-node adversary hooks behind
// them, the analyzer's route audit with its detection-latency and
// blast-radius metrics, and the determinism matrix — every pack must be
// bit-identical across intra-thread and shard counts and from run to run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/adversary.hpp"
#include "faults/campaign.hpp"
#include "faults/fault_script.hpp"
#include "faults/scenario.hpp"
#include "policy/valley_free.hpp"
#include "topology/generator.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace centaur {
namespace {

using topo::AsGraph;
using topo::NodeId;
using topo::Relationship;

/// Sets one environment variable for the duration of a scope (the Network
/// constructor samples CENTAUR_SHARDS / CENTAUR_INTRA_THREADS), restoring
/// the previous value on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, std::size_t value) : name_(name) {
    const std::optional<std::string> prev = util::env_string(name);
    if (prev) saved_ = *prev;
    had_prev_ = prev.has_value();
    EXPECT_EQ(setenv(name, std::to_string(value).c_str(), 1), 0);
  }
  ~ScopedEnv() {
    if (had_prev_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_prev_ = false;
  std::string saved_;
};

constexpr std::size_t kPackNodes = 40;
constexpr std::uint64_t kPackSeed = 1;

faults::ScenarioSpec pack_by_name(const std::string& name) {
  if (name == "route_leak") {
    return faults::route_leak_scenario(kPackNodes, kPackSeed);
  }
  if (name == "interception") {
    return faults::interception_scenario(kPackNodes, kPackSeed);
  }
  return faults::policy_churn_scenario(kPackNodes, kPackSeed);
}

const char* const kPackNames[] = {"route_leak", "interception",
                                  "policy_churn"};

// ------------------------------------------------- pack builders ---------

TEST(AdversarialPacks, BuildersProduceValidatedTwoSidedScripts) {
  const faults::ScenarioSpec leak = pack_by_name("route_leak");
  EXPECT_EQ(leak.name, "route_leak");
  ASSERT_EQ(leak.script.phases.size(), 2u);
  EXPECT_EQ(leak.script.phases[0].actions[0].kind,
            faults::ActionKind::kRouteLeak);
  EXPECT_EQ(leak.script.phases[1].actions[0].kind,
            faults::ActionKind::kRouteLeakStop);

  const faults::ScenarioSpec grab = pack_by_name("interception");
  ASSERT_EQ(grab.script.phases.size(), 2u);
  const faults::FaultAction& hijack = grab.script.phases[0].actions[0];
  EXPECT_EQ(hijack.kind, faults::ActionKind::kIntercept);
  EXPECT_NE(hijack.node, hijack.target);
  // The fabricated edge must not shadow a real session, or the audit could
  // mistake the hijack for an ordinary (if valley-violating) route.
  const AsGraph g = grab.topology.build();
  EXPECT_FALSE(g.maybe_rel(hijack.node, hijack.target).has_value());

  const faults::ScenarioSpec churn = pack_by_name("policy_churn");
  ASSERT_EQ(churn.script.phases.size(), 4u);
  const faults::FaultAction& sw = churn.script.phases[1].actions[0];
  EXPECT_EQ(sw.kind, faults::ActionKind::kRelChange);
  const AsGraph cg = churn.topology.build();
  // The provider switch is a real rewire (not already a peering), and the
  // switch-back restores the original contract.
  EXPECT_NE(sw.rel, cg.link(sw.link).rel_ab);
  EXPECT_EQ(churn.script.phases[2].actions[0].link, sw.link);
  EXPECT_EQ(churn.script.phases[2].actions[0].rel, cg.link(sw.link).rel_ab);
  // The flipped node owns the rewired session, so the preference flip has
  // peer and provider routes to reorder while the switch is in effect.
  const topo::NodeId flipped = churn.script.phases[0].actions[0].node;
  EXPECT_TRUE(cg.link(sw.link).a == flipped || cg.link(sw.link).b == flipped);
}

// The committed scenarios/*.json packs must stay in lockstep with the
// builders: the CLI and CI run the files, tests and the bench harness run
// the builders, and the determinism contract covers both only if they
// describe the same experiment.
TEST(AdversarialPacks, CommittedJsonPacksMatchBuilders) {
  for (const char* name : kPackNames) {
    SCOPED_TRACE(name);
    const faults::ScenarioSpec built = pack_by_name(name);
    const faults::ScenarioSpec json = faults::load_scenario_file(
        std::string(CENTAUR_SCENARIOS_DIR "/") + name + ".json");
    EXPECT_EQ(json.name, built.name);
    EXPECT_EQ(json.topology.style, built.topology.style);
    EXPECT_EQ(json.topology.nodes, built.topology.nodes);
    EXPECT_EQ(json.topology.seed, built.topology.seed);
    EXPECT_EQ(json.protocol, built.protocol);
    EXPECT_EQ(json.seed, built.seed);
    EXPECT_EQ(json.options.analysis, built.options.analysis);
    ASSERT_EQ(json.script.phases.size(), built.script.phases.size());
    for (std::size_t i = 0; i < built.script.phases.size(); ++i) {
      const faults::FaultPhase& jp = json.script.phases[i];
      const faults::FaultPhase& bp = built.script.phases[i];
      EXPECT_EQ(jp.name, bp.name);
      ASSERT_EQ(jp.actions.size(), bp.actions.size());
      for (std::size_t k = 0; k < bp.actions.size(); ++k) {
        const faults::FaultAction& ja = jp.actions[k];
        const faults::FaultAction& ba = bp.actions[k];
        EXPECT_EQ(ja.kind, ba.kind);
        EXPECT_EQ(ja.at, ba.at);
        EXPECT_EQ(ja.link, ba.link);
        EXPECT_EQ(ja.node, ba.node);
        EXPECT_EQ(ja.target, ba.target);
        EXPECT_EQ(ja.rel, ba.rel);
      }
    }
  }
}

// ------------------------------------------------- detection & blast -----

// Policy-aware arms must flag the leak while it is active and report a
// detection latency and a nonzero blast radius; the OSPF control arm (no
// policy layer, no RouteView) must stay silent with zero blast.
TEST(AdversarialPacks, RouteLeakIsDetectedOnPolicyArmsOnly) {
  bool any_detected = false;
  for (const eval::Protocol p : eval::kAllProtocols) {
    faults::ScenarioSpec spec = pack_by_name("route_leak");
    spec.protocol = p;
    const faults::CampaignResult r = faults::run_scenario(spec);
    ASSERT_EQ(r.phases.size(), 2u) << eval::to_string(p);
    const faults::PhaseReport& active = r.phases[0];
    if (p == eval::Protocol::kOspf) {
      EXPECT_EQ(active.audit_routes_flagged, 0u);
      EXPECT_EQ(active.detection_events, -1);
      EXPECT_EQ(active.blast_radius, 0u);
      continue;
    }
    if (active.detection_events >= 0) {
      any_detected = true;
      EXPECT_GT(active.audit_routes_flagged, 0u) << eval::to_string(p);
      EXPECT_GE(active.detection_time, 0.0) << eval::to_string(p);
      EXPECT_GT(active.blast_radius, 0u) << eval::to_string(p);
    }
  }
  EXPECT_TRUE(any_detected)
      << "no protocol arm ever flagged the route leak";
}

TEST(AdversarialPacks, InterceptionIsDetectedAndWithdrawn) {
  bool any_detected = false;
  for (const eval::Protocol p : eval::kAllProtocols) {
    faults::ScenarioSpec spec = pack_by_name("interception");
    spec.protocol = p;
    const faults::CampaignResult r = faults::run_scenario(spec);
    ASSERT_EQ(r.phases.size(), 2u) << eval::to_string(p);
    if (p == eval::Protocol::kOspf) {
      EXPECT_EQ(r.phases[0].audit_routes_flagged, 0u);
      continue;
    }
    if (r.phases[0].detection_events >= 0) {
      any_detected = true;
      EXPECT_GT(r.phases[0].blast_radius, 0u) << eval::to_string(p);
    }
    // Once withdrawn, no quiescent route may still cross the fabricated
    // edge: the withdraw phase's *final* sweep runs at quiescence, so a
    // lingering flag there would mean the hijack survived its stop.
    EXPECT_EQ(r.phases[1].name, "withdraw");
  }
  EXPECT_TRUE(any_detected)
      << "no protocol arm ever flagged the interception";
}

TEST(AdversarialPacks, PolicyChurnConvergesWithNonzeroBlast) {
  for (const eval::Protocol p : eval::kAllProtocols) {
    faults::ScenarioSpec spec = pack_by_name("policy_churn");
    spec.protocol = p;
    const faults::CampaignResult r = faults::run_scenario(spec);
    ASSERT_EQ(r.phases.size(), 4u) << eval::to_string(p);
    if (p == eval::Protocol::kOspf) continue;
    // The churn node and the rewired link's endpoints carry transit for
    // somebody on a 40-node graph.
    EXPECT_GT(r.phases[0].blast_radius, 0u) << eval::to_string(p);
  }
}

// The audit flags are a measurement, not a structural violation: under
// kAssert the per-phase sweeps must keep passing while the audit is
// flagging leaked routes (the misbehavior is consistent protocol state).
TEST(AdversarialPacks, AuditFlagsDoNotTripAssertMode) {
  faults::ScenarioSpec spec = pack_by_name("route_leak");
  spec.protocol = eval::Protocol::kCentaur;
  spec.options.analysis = eval::AnalysisMode::kAssert;
  faults::CampaignResult r;
  ASSERT_NO_THROW(r = faults::run_scenario(spec));
  EXPECT_TRUE(r.clean());
  EXPECT_GT(r.phases[0].audit_routes_flagged, 0u);
}

// ------------------------------------------------- determinism matrix ----

// Every pack, on both policy-aware protocol families, must produce
// bit-identical phase reports — adversarial metrics included — across the
// {1,4} intra-thread x {1,4} shard matrix and from run to run.
TEST(AdversarialPacks, BitIdenticalAcrossThreadsAndShards) {
  for (const char* name : kPackNames) {
    for (const eval::Protocol p :
         {eval::Protocol::kCentaur, eval::Protocol::kBgp}) {
      faults::ScenarioSpec spec = pack_by_name(name);
      spec.protocol = p;
      const AsGraph g = spec.topology.build();
      std::optional<std::vector<faults::PhaseReport>> reference;
      for (const std::size_t threads : {1u, 4u}) {
        for (const std::size_t shards : {1u, 4u}) {
          const ScopedEnv t("CENTAUR_INTRA_THREADS", threads);
          const ScopedEnv s("CENTAUR_SHARDS", shards);
          const faults::CampaignResult r = faults::run_scenario(g, spec);
          if (!reference) {
            reference = r.phases;
          } else {
            EXPECT_EQ(*reference, r.phases)
                << name << "/" << eval::to_string(p) << " threads=" << threads
                << " shards=" << shards;
          }
        }
      }
      // Run-to-run identity in the reference configuration.
      const ScopedEnv t("CENTAUR_INTRA_THREADS", std::size_t{1});
      const ScopedEnv s("CENTAUR_SHARDS", std::size_t{1});
      const faults::CampaignResult again = faults::run_scenario(g, spec);
      EXPECT_EQ(*reference, again.phases)
          << name << "/" << eval::to_string(p) << " rerun";
    }
  }
}

// ------------------------------------------------- hook unit tests -------

TEST(AdversaryHooks, DispatchReachesPolicyArmsAndSkipsOspf) {
  const faults::ScenarioSpec spec = pack_by_name("route_leak");
  const AsGraph g = spec.topology.build();
  for (const eval::Protocol p : eval::kAllProtocols) {
    util::Rng rng(3);
    eval::ProtocolRun run(g, p, rng);
    const bool policy_arm = p != eval::Protocol::kOspf;
    EXPECT_EQ(eval::set_route_leak(run.network().node(0), true), policy_arm);
    EXPECT_EQ(eval::set_route_leak(run.network().node(0), false), policy_arm);
    EXPECT_EQ(eval::set_intercept(run.network().node(0), 5, true),
              policy_arm);
    EXPECT_EQ(eval::set_intercept(run.network().node(0), 5, false),
              policy_arm);
    EXPECT_EQ(eval::set_local_pref_flip(run.network().node(0), true),
              policy_arm);
    EXPECT_EQ(eval::set_local_pref_flip(run.network().node(0), false),
              policy_arm);
  }
}

TEST(AdversaryHooks, LocalPrefFlipRankingSwapsPeerAndProviderOnly) {
  const policy::RankingOverride rank = eval::local_pref_flip_ranking();
  const topo::Path none;
  const auto cand = [](policy::RouteSource s) {
    return policy::Candidate{s, 2, 1};
  };
  // Flipped: provider (class 3 -> 2) now beats peer (class 2 -> 3).
  EXPECT_TRUE(rank(cand(policy::RouteSource::kProvider), none,
                   cand(policy::RouteSource::kPeer), none));
  EXPECT_FALSE(rank(cand(policy::RouteSource::kPeer), none,
                    cand(policy::RouteSource::kProvider), none));
  // Customers still beat both, and equal classes express no preference
  // (ties fall through to the standard ranking).
  EXPECT_TRUE(rank(cand(policy::RouteSource::kCustomer), none,
                   cand(policy::RouteSource::kProvider), none));
  EXPECT_FALSE(rank(cand(policy::RouteSource::kPeer), none,
                    cand(policy::RouteSource::kPeer), none));
}

TEST(AdversaryHooks, BlastRadiusCountsTransitNotDestination) {
  //   0 ===peer=== 1, 2 under 0, 3 under 1: routes 2<->3 transit both tops.
  AsGraph g(4);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(2, 0, Relationship::kProvider);
  g.add_link(3, 1, Relationship::kProvider);
  util::Rng rng(1);
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);
  // Node 1 as target: 2 and 3 route through it (2's path to 3/1's side, 3's
  // path up), 0 peers across it; the target itself never counts.
  EXPECT_EQ(eval::blast_radius(run.network(), g.num_nodes(), {1}), 3u);
  // Routes *to* the target alone do not count: node 3 reaches 2 only via
  // 1 -> 0, so with target 0 every other node still transits; but with
  // target 3 nobody transits (3 is a stub — only a destination).
  EXPECT_EQ(eval::blast_radius(run.network(), g.num_nodes(), {3}), 0u);
  EXPECT_EQ(eval::blast_radius(run.network(), g.num_nodes(), {}), 0u);
}

// ------------------------------------------------- satellite-2 -----------

TEST(ValleyFreeRoutes, UnreachableSourceYieldsEmptyPathWithoutThrowing) {
  // Node 3 is isolated: no route toward 0 exists, and path_from must report
  // that as an empty path (campaign code probes static routes mid-rewire).
  AsGraph g(4);
  g.add_link(1, 0, Relationship::kProvider);
  g.add_link(2, 0, Relationship::kProvider);
  const auto routes = policy::ValleyFreeRoutes::compute(g, 0);
  EXPECT_FALSE(routes.at(3).reachable());
  topo::Path path;
  ASSERT_NO_THROW(path = routes.path_from(3));
  EXPECT_TRUE(path.empty());
  EXPECT_EQ(routes.path_from(0), (topo::Path{0}));
}

}  // namespace
}  // namespace centaur
