#include <gtest/gtest.h>

#include <tuple>

#include "topology/prefix.hpp"
#include "util/rng.hpp"

namespace centaur::topo {
namespace {

// -------------------------------------------------------------- parsing ---

TEST(Ipv4Prefix, ParseAndPrintRoundTrip) {
  for (const char* text : {"10.0.0.0/8", "192.168.1.0/24", "0.0.0.0/0",
                           "255.255.255.255/32", "172.16.0.0/12"}) {
    const Ipv4Prefix p = Ipv4Prefix::parse(text);
    EXPECT_EQ(p.to_string(), text);
  }
}

TEST(Ipv4Prefix, ParseCanonicalisesHostBits) {
  EXPECT_EQ(Ipv4Prefix::parse("10.1.2.3/8"), Ipv4Prefix::parse("10.0.0.0/8"));
}

TEST(Ipv4Prefix, ParseRejectsMalformed) {
  for (const char* bad : {"10.0.0.0", "10.0.0/8", "10.0.0.0/33",
                          "256.0.0.0/8", "a.b.c.d/8", "10.0.0.0/8x",
                          "10.0.0.0//8", ""}) {
    EXPECT_THROW(Ipv4Prefix::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(Ipv4Prefix, Containment) {
  const auto p8 = Ipv4Prefix::parse("10.0.0.0/8");
  const auto p16 = Ipv4Prefix::parse("10.1.0.0/16");
  const auto other = Ipv4Prefix::parse("11.0.0.0/8");
  EXPECT_TRUE(p8.contains(p16));
  EXPECT_FALSE(p16.contains(p8));
  EXPECT_TRUE(p8.contains(p8));
  EXPECT_FALSE(p8.contains(other));
  EXPECT_TRUE(p8.contains(0x0A010203u));   // 10.1.2.3
  EXPECT_FALSE(p8.contains(0x0B000000u));  // 11.0.0.0
  // /0 contains everything.
  EXPECT_TRUE(Ipv4Prefix::parse("0.0.0.0/0").contains(other));
}

TEST(Ipv4Prefix, SplitParentBuddies) {
  const auto p8 = Ipv4Prefix::parse("10.0.0.0/8");
  const auto [lo, hi] = p8.split();
  EXPECT_EQ(lo, Ipv4Prefix::parse("10.0.0.0/9"));
  EXPECT_EQ(hi, Ipv4Prefix::parse("10.128.0.0/9"));
  EXPECT_EQ(lo.parent(), p8);
  EXPECT_EQ(hi.parent(), p8);
  EXPECT_TRUE(Ipv4Prefix::buddies(lo, hi));
  EXPECT_FALSE(Ipv4Prefix::buddies(lo, lo));
  EXPECT_FALSE(Ipv4Prefix::buddies(lo, Ipv4Prefix::parse("11.0.0.0/9")));
  EXPECT_THROW(Ipv4Prefix::parse("1.2.3.4/32").split(), std::invalid_argument);
  EXPECT_THROW(Ipv4Prefix::parse("0.0.0.0/0").parent(), std::invalid_argument);
}

// ---------------------------------------------------------- PrefixTable ---

TEST(PrefixTable, LongestPrefixMatch) {
  PrefixTable t;
  EXPECT_TRUE(t.insert(Ipv4Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_TRUE(t.insert(Ipv4Prefix::parse("10.1.0.0/16"), 2));
  EXPECT_TRUE(t.insert(Ipv4Prefix::parse("0.0.0.0/0"), 9));
  EXPECT_EQ(t.size(), 3u);

  const auto r1 = t.lookup(0x0A010203);  // 10.1.2.3 -> /16 wins
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->origin, 2u);
  EXPECT_EQ(r1->prefix, Ipv4Prefix::parse("10.1.0.0/16"));

  const auto r2 = t.lookup(0x0A800001);  // 10.128.0.1 -> /8
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->origin, 1u);

  const auto r3 = t.lookup(0xC0A80101);  // 192.168.1.1 -> default
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->origin, 9u);
}

TEST(PrefixTable, InsertReplacesEraseRemoves) {
  PrefixTable t;
  const auto p = Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(t.insert(p, 1));
  EXPECT_FALSE(t.insert(p, 2));  // replaced, not new
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(p), 2u);
  EXPECT_TRUE(t.erase(p));
  EXPECT_FALSE(t.erase(p));
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.lookup(0x0A000001).has_value());
}

TEST(PrefixTable, RoutesEnumerationSorted) {
  PrefixTable t;
  t.insert(Ipv4Prefix::parse("192.168.0.0/16"), 3);
  t.insert(Ipv4Prefix::parse("10.0.0.0/8"), 1);
  t.insert(Ipv4Prefix::parse("10.0.0.0/16"), 2);
  const auto routes = t.routes();
  ASSERT_EQ(routes.size(), 3u);
  EXPECT_EQ(routes[0].prefix, Ipv4Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(routes[1].prefix, Ipv4Prefix::parse("10.0.0.0/16"));
  EXPECT_EQ(routes[2].prefix, Ipv4Prefix::parse("192.168.0.0/16"));
}

TEST(PrefixTable, MoveSemantics) {
  PrefixTable a;
  a.insert(Ipv4Prefix::parse("10.0.0.0/8"), 1);
  PrefixTable b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(a.empty());  // NOLINT: moved-from is valid-empty by contract
  a = std::move(b);
  EXPECT_EQ(a.size(), 1u);
}

class PrefixLpmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixLpmProperty, MatchesBruteForce) {
  util::Rng rng(GetParam());
  PrefixTable table;
  std::vector<PrefixRoute> routes;
  for (int i = 0; i < 60; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_u64(4, 28));
    const auto addr = static_cast<std::uint32_t>(rng.next());
    const PrefixRoute r{Ipv4Prefix::of(addr, len), static_cast<NodeId>(i)};
    table.insert(r.prefix, r.origin);
    // Mirror replacement semantics in the reference list.
    std::erase_if(routes, [&](const PrefixRoute& x) {
      return x.prefix == r.prefix;
    });
    routes.push_back(r);
  }
  for (int probe = 0; probe < 300; ++probe) {
    const auto ip = static_cast<std::uint32_t>(rng.next());
    std::optional<PrefixRoute> expect;
    for (const PrefixRoute& r : routes) {
      if (r.prefix.contains(ip) &&
          (!expect || r.prefix.len > expect->prefix.len)) {
        expect = r;
      }
    }
    const auto got = table.lookup(ip);
    ASSERT_EQ(got.has_value(), expect.has_value());
    if (got) {
      EXPECT_EQ(got->origin, expect->origin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrefixLpmProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ----------------------------------------------------------- aggregation --

TEST(Aggregate, MergesBuddiesRecursively) {
  std::vector<PrefixRoute> routes;
  // All four /10s of 10.0.0.0/8, same origin: collapse to the /8.
  for (const char* p :
       {"10.0.0.0/10", "10.64.0.0/10", "10.128.0.0/10", "10.192.0.0/10"}) {
    routes.push_back({Ipv4Prefix::parse(p), 7});
  }
  const auto agg = aggregate(routes);
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0].prefix, Ipv4Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(agg[0].origin, 7u);
}

TEST(Aggregate, DifferentOriginsDoNotMerge) {
  const std::vector<PrefixRoute> routes{
      {Ipv4Prefix::parse("10.0.0.0/9"), 1},
      {Ipv4Prefix::parse("10.128.0.0/9"), 2},
  };
  EXPECT_EQ(aggregate(routes).size(), 2u);
}

TEST(Aggregate, DropsDuplicatesAndKeepsSingles) {
  const std::vector<PrefixRoute> routes{
      {Ipv4Prefix::parse("10.0.0.0/9"), 1},
      {Ipv4Prefix::parse("10.0.0.0/9"), 1},
      {Ipv4Prefix::parse("192.168.0.0/16"), 1},
  };
  const auto agg = aggregate(routes);
  EXPECT_EQ(agg.size(), 2u);
}

TEST(Deaggregate, SplitsAndRoundTrips) {
  const PrefixRoute r{Ipv4Prefix::parse("10.0.0.0/8"), 5};
  const auto subs = deaggregate(r, 11);
  EXPECT_EQ(subs.size(), 8u);
  for (const auto& s : subs) {
    EXPECT_EQ(s.prefix.len, 11);
    EXPECT_TRUE(r.prefix.contains(s.prefix));
    EXPECT_EQ(s.origin, 5u);
  }
  // Aggregating the split recovers the original.
  const auto agg = aggregate(subs);
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0], r);
}

TEST(Deaggregate, SameLengthIsIdentity) {
  const PrefixRoute r{Ipv4Prefix::parse("10.0.0.0/8"), 5};
  const auto subs = deaggregate(r, 8);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], r);
}

TEST(Deaggregate, RejectsBadTargets) {
  const PrefixRoute r{Ipv4Prefix::parse("10.0.0.0/8"), 5};
  EXPECT_THROW(deaggregate(r, 7), std::invalid_argument);
  EXPECT_THROW(deaggregate(r, 30), std::invalid_argument);  // 2^22 too many
}

class AggregateRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregateRoundTrip, PreservesAddressToOriginMapping) {
  util::Rng rng(GetParam());
  // Random non-overlapping-ish routes: distinct /12s split to random depth.
  std::vector<PrefixRoute> routes;
  const auto blocks = rng.sample_without_replacement(1 << 12, 24);
  for (const std::size_t block : blocks) {
    const PrefixRoute base{
        Ipv4Prefix::of(static_cast<std::uint32_t>(block) << 20, 12),
        static_cast<NodeId>(rng.index(6))};
    const auto len = static_cast<std::uint8_t>(12 + rng.index(6));
    const auto split = deaggregate(base, len);
    routes.insert(routes.end(), split.begin(), split.end());
  }
  const auto agg = aggregate(routes);
  EXPECT_LE(agg.size(), routes.size());

  // The LPM behaviour of the aggregated set must be identical.
  PrefixTable before, after;
  for (const auto& r : routes) before.insert(r.prefix, r.origin);
  for (const auto& r : agg) after.insert(r.prefix, r.origin);
  for (int probe = 0; probe < 400; ++probe) {
    const auto ip = static_cast<std::uint32_t>(rng.next());
    const auto a = before.lookup(ip);
    const auto b = after.lookup(ip);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->origin, b->origin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggregateRoundTrip,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace centaur::topo
