#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "util/flat_map.hpp"
#include "util/rng.hpp"
#include "util/small_vec.hpp"
#include "util/unique_function.hpp"
#include "util/vec_map.hpp"

namespace centaur::util {
namespace {

// ------------------------------------------------------------ FlatMap -----

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint32_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), nullptr);

  m[7] = 70;
  m[9] = 90;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  EXPECT_EQ(m.count(9), 1u);
  EXPECT_EQ(m.count(8), 0u);

  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  ASSERT_NE(m.find(9), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EnsureReportsInsertion) {
  FlatMap<std::uint64_t, int> m;
  bool inserted = false;
  int& v = m.ensure(42, inserted);
  EXPECT_TRUE(inserted);
  v = 5;
  int& again = m.ensure(42, inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(again, 5);
}

TEST(FlatMap, GrowsPastMinimumCapacity) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; k < 5000; ++k) m[k * 977] = k;
  EXPECT_EQ(m.size(), 5000u);
  for (std::uint64_t k = 0; k < 5000; ++k) {
    ASSERT_NE(m.find(k * 977), nullptr) << k;
    EXPECT_EQ(*m.find(k * 977), k);
  }
  EXPECT_EQ(m.find(1), nullptr);
}

TEST(FlatMap, EraseKeepsProbeChainsIntact) {
  // Backward-shift deletion must leave every surviving key reachable no
  // matter which keys leave; churn through a randomized insert/erase
  // sequence and mirror it in a std::set oracle.
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::set<std::uint64_t> oracle;
  Rng rng(1234);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t k = rng.next() % 512;
    if (rng.next() % 3 == 0) {
      EXPECT_EQ(m.erase(k), oracle.erase(k) > 0);
    } else {
      m[k] = k;
      oracle.insert(k);
    }
  }
  EXPECT_EQ(m.size(), oracle.size());
  for (const std::uint64_t k : oracle) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), k);
  }
  for (std::uint64_t k = 0; k < 512; ++k) {
    EXPECT_EQ(m.count(k), oracle.count(k)) << k;
  }
}

TEST(FlatMap, IterationVisitsEveryEntryOnce) {
  FlatMap<std::uint32_t, int> m;
  for (std::uint32_t k = 0; k < 100; ++k) m[k] = static_cast<int>(k);
  std::set<std::uint32_t> seen;
  for (const auto& [key, value] : m) {
    EXPECT_EQ(value, static_cast<int>(key));
    EXPECT_TRUE(seen.insert(key).second) << "duplicate " << key;
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(FlatMap, IterationOrderIsDeterministic) {
  // Same insert/erase sequence => same slot order; the simulator's
  // reproducibility guarantee depends on this.
  auto build = [] {
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 200; ++k) m[k * 31] = 1;
    for (std::uint64_t k = 0; k < 200; k += 3) m.erase(k * 31);
    return m;
  };
  const auto a = build();
  const auto b = build();
  std::vector<std::uint64_t> ka, kb;
  for (const auto& [key, value] : a) ka.push_back(key);
  for (const auto& [key, value] : b) kb.push_back(key);
  EXPECT_EQ(ka, kb);
}

TEST(FlatMap, ClearEmptiesButStaysUsable) {
  FlatMap<std::uint32_t, int> m;
  for (std::uint32_t k = 0; k < 50; ++k) m[k] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.begin(), m.end());
  m[3] = 9;
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_EQ(*m.find(3), 9);
}

TEST(FlatMap, PackedLinkKeys) {
  FlatMap<std::uint64_t, int> m;
  const auto pack = [](std::uint32_t from, std::uint32_t to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  };
  m[pack(1, 2)] = 12;
  m[pack(2, 1)] = 21;
  EXPECT_EQ(*m.find(pack(1, 2)), 12);
  EXPECT_EQ(*m.find(pack(2, 1)), 21);
  EXPECT_EQ(m.find(pack(1, 1)), nullptr);
}

// ------------------------------------------------------------- VecMap -----

TEST(VecMap, InsertFindEraseSorted) {
  VecMap<std::uint32_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), nullptr);

  m[9] = 90;
  m[7] = 70;
  m[8] = 80;
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  EXPECT_EQ(m.count(9), 1u);
  EXPECT_EQ(m.count(6), 0u);

  EXPECT_TRUE(m.erase(8));
  EXPECT_FALSE(m.erase(8));
  EXPECT_EQ(m.find(8), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(VecMap, IterationIsAscendingRegardlessOfInsertOrder) {
  VecMap<std::uint32_t, int> m;
  for (std::uint32_t k : {41u, 5u, 99u, 12u, 7u}) m[k] = static_cast<int>(k);
  std::vector<std::uint32_t> keys;
  for (const auto& [k, v] : m) {
    keys.push_back(k);
    EXPECT_EQ(v, static_cast<int>(k));
  }
  EXPECT_EQ(keys, (std::vector<std::uint32_t>{5, 7, 12, 41, 99}));
}

TEST(VecMap, EnsureReportsInsertion) {
  VecMap<std::uint32_t, int> m;
  bool inserted = false;
  int& a = m.ensure(3, inserted);
  EXPECT_TRUE(inserted);
  a = 30;
  int& b = m.ensure(3, inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(b, 30);
}

TEST(VecMap, HoldsMoveHeavyValues) {
  VecMap<std::uint32_t, std::vector<int>> m;
  m[2] = {2, 2};
  m[1] = {1};
  m[3] = {3, 3, 3};
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(m.find(3)->size(), 3u);
  // Inserting before existing entries must shift them intact.
  m[0] = {0};
  EXPECT_EQ(*m.find(2), (std::vector<int>{2, 2}));
  EXPECT_EQ(m.begin()->first, 0u);
}

TEST(VecMap, EqualityComparesContents) {
  VecMap<std::uint32_t, int> a, b;
  a[1] = 10;
  b[1] = 10;
  EXPECT_TRUE(a == b);
  b[2] = 20;
  EXPECT_FALSE(a == b);
}

// ----------------------------------------------------------- SmallVec -----

TEST(SmallVec, InlineThenSpill) {
  SmallVec<std::uint32_t, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  for (std::uint32_t i = 4; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GT(v.capacity(), 4u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
  EXPECT_EQ(v.front(), 0u);
  EXPECT_EQ(v.back(), 99u);
}

TEST(SmallVec, InsertAndEraseInMiddle) {
  SmallVec<int, 4> v{1, 2, 4, 5};
  v.insert(v.begin() + 2, 3);
  EXPECT_EQ(v, (SmallVec<int, 4>{1, 2, 3, 4, 5}));
  v.erase(v.begin());
  v.erase(v.end() - 1);
  EXPECT_EQ(v, (SmallVec<int, 4>{2, 3, 4}));
}

TEST(SmallVec, CopyAndMoveBothStorageModes) {
  SmallVec<int, 4> small{1, 2};
  SmallVec<int, 4> big;
  for (int i = 0; i < 32; ++i) big.push_back(i);

  SmallVec<int, 4> small_copy(small);
  SmallVec<int, 4> big_copy(big);
  EXPECT_EQ(small_copy, small);
  EXPECT_EQ(big_copy, big);

  SmallVec<int, 4> small_moved(std::move(small_copy));
  SmallVec<int, 4> big_moved(std::move(big_copy));
  EXPECT_EQ(small_moved, small);
  EXPECT_EQ(big_moved, big);
  EXPECT_TRUE(big_copy.empty());  // NOLINT(bugprone-use-after-move)

  big_moved = small;  // heap -> inline assignment
  EXPECT_EQ(big_moved, small);
  small_moved = big;  // inline -> heap assignment
  EXPECT_EQ(small_moved, big);
}

TEST(SmallVec, SortedHelpers) {
  SmallVec<std::uint32_t, 4> v;
  EXPECT_TRUE(sorted_insert(v, 5u));
  EXPECT_TRUE(sorted_insert(v, 1u));
  EXPECT_TRUE(sorted_insert(v, 3u));
  EXPECT_FALSE(sorted_insert(v, 3u));  // duplicate
  EXPECT_EQ(v, (SmallVec<std::uint32_t, 4>{1, 3, 5}));
  EXPECT_TRUE(sorted_contains(v, 3u));
  EXPECT_FALSE(sorted_contains(v, 4u));
  EXPECT_TRUE(sorted_erase(v, 3u));
  EXPECT_FALSE(sorted_erase(v, 3u));
  EXPECT_EQ(v, (SmallVec<std::uint32_t, 4>{1, 5}));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

// ----------------------------------------------------- UniqueFunction -----

TEST(UniqueFunction, InvokesAndMoves) {
  int hits = 0;
  UniqueFunction f([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  UniqueFunction g(std::move(f));
  g();
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
}

TEST(UniqueFunction, OwnsMoveOnlyCaptures) {
  // The whole point: std::function cannot hold this lambda at all.
  auto p = std::make_unique<int>(99);
  int seen = 0;
  UniqueFunction f([p = std::move(p), &seen] { seen = *p; });
  f();
  EXPECT_EQ(seen, 99);
}

TEST(UniqueFunction, DestroysCaptureExactlyOnce) {
  auto tracker = std::make_shared<int>(1);
  EXPECT_EQ(tracker.use_count(), 1);
  {
    UniqueFunction f([tracker] { (void)tracker; });
    EXPECT_EQ(tracker.use_count(), 2);
    UniqueFunction g(std::move(f));
    EXPECT_EQ(tracker.use_count(), 2);  // moved, not copied
    g.reset();
    EXPECT_EQ(tracker.use_count(), 1);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(UniqueFunction, SpillsLargeCallablesToHeap) {
  struct Big {
    unsigned char pad[96];  // > kInlineSize, forces the spill path
    std::shared_ptr<int> alive;
  };
  static_assert(sizeof(Big) > UniqueFunction::kInlineSize);
  auto tracker = std::make_shared<int>(7);
  int seen = 0;
  {
    Big big{};
    big.alive = tracker;
    UniqueFunction f([big, &seen] { seen = *big.alive; });
    EXPECT_EQ(tracker.use_count(), 3);  // big + the copy in f
    UniqueFunction g(std::move(f));
    g();
    EXPECT_EQ(seen, 7);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(UniqueFunction, MoveAssignReplacesTarget) {
  int a = 0, b = 0;
  UniqueFunction f([&a] { ++a; });
  UniqueFunction g([&b] { ++b; });
  g = std::move(f);
  g();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 0);
}

// --------------------------------------------------------- derive_seed ----

TEST(DeriveSeed, DeterministicAndWellSpread) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(derive_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across trial indices
  EXPECT_NE(derive_seed(1, 5), derive_seed(2, 5));  // base matters
}

}  // namespace
}  // namespace centaur::util
