// Tests for centaur-lint (tools/lint) against the fixture mini-repo in
// tools/lint/fixtures/: every rule fires on its fixture, suppressions are
// honored in both same-line and next-line form, the baseline is shrink-only
// in both directions, and the JSON/SARIF reporters emit well-formed output.
//
// CENTAUR_LINT_FIXTURES_DIR is injected by tests/CMakeLists.txt and points
// at the checked-in fixture tree (excluded from the real lint walk).
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"
#include "report.hpp"

namespace {

using namespace centaur::lint;

std::string fixtures_dir() { return CENTAUR_LINT_FIXTURES_DIR; }

LintOptions fixture_options() {
  LintOptions opts;
  opts.root = fixtures_dir() + "/repo";
  opts.contexts_path = fixtures_dir() + "/contexts.txt";
  // Baseline defaults to ROOT/tools/lint/baseline.txt, which does not exist
  // in the fixture repo -> empty baseline unless a test overrides it.
  return opts;
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

bool has_finding_at(const std::vector<Finding>& findings,
                    const std::string& rule, const std::string& file,
                    std::size_t line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.file == file && f.line == line;
  });
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// Minimal recursive-descent JSON well-formedness checker: enough to prove
// the reporters escape correctly and balance every bracket, without a JSON
// library dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::string w = word;
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control characters must be escaped
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }
  bool members(char close, bool want_keys) {
    ++pos_;  // opening bracket
    skip_ws();
    if (peek() == close) {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (want_keys) {
        if (!string()) return false;
        skip_ws();
        if (peek() != ':') return false;
        ++pos_;
      }
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == close) {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool value() {
    switch (peek()) {
      case '{': return members('}', true);
      case '[': return members(']', false);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool json_well_formed(const std::string& s) {
  return JsonChecker(s).valid();
}

// --------------------------------------------------------------- rules ---

TEST(LintRules, EveryRuleFiresOnItsFixture) {
  const LintResult result = run_lint(fixture_options());
  ASSERT_TRUE(result.errors.empty());

  EXPECT_EQ(result.stats.files, 7u);
  EXPECT_EQ(result.findings.size(), 12u);
  EXPECT_EQ(count_rule(result.findings, "D1"), 2u);
  EXPECT_EQ(count_rule(result.findings, "D2"), 2u);
  EXPECT_EQ(count_rule(result.findings, "E1"), 1u);
  EXPECT_EQ(count_rule(result.findings, "R1"), 2u);
  EXPECT_EQ(count_rule(result.findings, "W1"), 2u);
  EXPECT_EQ(count_rule(result.findings, "O1"), 1u);
  EXPECT_EQ(count_rule(result.findings, "LINT"), 2u);
}

TEST(LintRules, D1ReachabilityGuardsAndDrivers) {
  const LintResult result = run_lint(fixture_options());
  ASSERT_TRUE(result.errors.empty());

  // The entry's own schedule() and the reachable helper's counter mutation.
  std::vector<std::string> d1_tokens;
  for (const Finding& f : result.findings) {
    if (f.rule == "D1") d1_tokens.push_back(f.token);
  }
  ASSERT_EQ(d1_tokens.size(), 2u);
  EXPECT_NE(std::find(d1_tokens.begin(), d1_tokens.end(),
                      "FakeNode::on_message:schedule"),
            d1_tokens.end());
  EXPECT_NE(std::find(d1_tokens.begin(), d1_tokens.end(),
                      "FakeNode::bump:window_"),
            d1_tokens.end());

  // Neither the guard-aware function nor the declared driver is flagged.
  for (const Finding& f : result.findings) {
    EXPECT_FALSE(contains(f.token, "guarded_bump")) << f.token;
    EXPECT_FALSE(contains(f.token, "Driver::run")) << f.token;
  }
}

TEST(LintRules, SuppressionsCoverSameLineAndNextLine) {
  const LintResult result = run_lint(fixture_options());
  ASSERT_TRUE(result.errors.empty());

  // One suppressed finding per rule fixture (6 total; the LINT fixture's
  // broken directives suppress nothing).
  EXPECT_EQ(result.stats.suppressed, 6u);

  // Same-line form: printf on o1_bad.cpp:7 is suppressed, cout on line 6
  // still fires.
  EXPECT_TRUE(has_finding_at(result.findings, "O1", "src/o1_bad.cpp", 6));
  EXPECT_FALSE(has_finding_at(result.findings, "O1", "src/o1_bad.cpp", 7));

  // Next-line form: the raw env read on tools/e1_bad.cpp:8 is suppressed.
  EXPECT_TRUE(has_finding_at(result.findings, "E1", "tools/e1_bad.cpp", 4));
  EXPECT_FALSE(has_finding_at(result.findings, "E1", "tools/e1_bad.cpp", 8));
}

TEST(LintRules, BrokenDirectivesAreFindingsAndNotSuppressible) {
  const LintResult result = run_lint(fixture_options());
  ASSERT_TRUE(result.errors.empty());

  // Line 5: directive without a reason.  Line 8: unknown rule name.
  EXPECT_TRUE(
      has_finding_at(result.findings, "LINT", "tests/meta_bad.cpp", 5));
  EXPECT_TRUE(
      has_finding_at(result.findings, "LINT", "tests/meta_bad.cpp", 8));
}

// ------------------------------------------------------------ baseline ---

TEST(LintBaseline, ExactEntriesAbsorbFindings) {
  LintOptions opts = fixture_options();
  opts.paths = {"src/d2_bad.cpp"};
  opts.baseline_path = fixtures_dir() + "/baseline_match.txt";
  const LintResult result = run_lint(opts);
  ASSERT_TRUE(result.errors.empty());
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.stats.baselined, 2u);
  EXPECT_EQ(result.stats.suppressed, 1u);
}

TEST(LintBaseline, UncoveredFindingStaysFresh) {
  LintOptions opts = fixture_options();
  opts.paths = {"src/d2_bad.cpp"};
  opts.baseline_path = fixtures_dir() + "/baseline_partial.txt";
  const LintResult result = run_lint(opts);
  ASSERT_TRUE(result.errors.empty());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "D2");
  EXPECT_EQ(result.findings[0].token, "unordered_map");
  EXPECT_EQ(result.stats.baselined, 1u);
}

TEST(LintBaseline, StaleEntryFailsTheGate) {
  LintOptions opts = fixture_options();
  opts.paths = {"src/d2_bad.cpp"};
  opts.baseline_path = fixtures_dir() + "/baseline_stale.txt";
  const LintResult result = run_lint(opts);
  ASSERT_TRUE(result.errors.empty());
  // The over-claiming entry still absorbs the one real finding, then fails
  // as a BASE finding against the baseline file itself.
  EXPECT_EQ(result.stats.baselined, 2u);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "BASE");
  EXPECT_TRUE(contains(result.findings[0].file, "baseline_stale.txt"));
  EXPECT_EQ(result.findings[0].token, "D2:src/d2_bad.cpp:unordered_map");
  EXPECT_TRUE(contains(result.findings[0].message, "may only shrink"));
}

TEST(LintBaseline, ParserRejectsMalformedEntries) {
  const Baseline b = parse_baseline(
      "# comment\n"
      "D2 src/x.cpp tok 0\n"     // count 0: delete instead
      "ZZ src/x.cpp tok 1\n"     // unknown rule
      "D2 onlytwo\n"             // missing fields
      "E1 src/y.cpp tok 3\n");
  EXPECT_EQ(b.errors.size(), 3u);
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_EQ(b.entries[0].rule, "E1");
  EXPECT_EQ(b.entries[0].count, 3u);
}

// ------------------------------------------------------------ contexts ---

TEST(LintContexts, ParsesDeclarationsAndReportsErrors) {
  const RuleContexts ctx = parse_contexts(
      "# comment\n"
      "entry Node::on_message\n"
      "counter total_\n"
      "driver Sim::run\n"
      "cursor Cursor\n"
      "entry\n"              // missing value
      "gadget Node::spin\n"  // unknown declaration kind
  );
  EXPECT_EQ(ctx.entries.size(), 1u);
  EXPECT_EQ(ctx.counters.size(), 1u);
  EXPECT_EQ(ctx.drivers.size(), 1u);
  EXPECT_EQ(ctx.cursors.size(), 1u);
  EXPECT_EQ(ctx.errors.size(), 2u);
}

TEST(LintContexts, MissingContextsFileIsFatal) {
  LintOptions opts = fixture_options();
  opts.contexts_path = fixtures_dir() + "/does_not_exist.txt";
  const LintResult result = run_lint(opts);
  EXPECT_FALSE(result.errors.empty());
}

// ----------------------------------------------------------- file walk ---

TEST(LintWalk, CollectsFixtureRepoSortedAndDeduped) {
  std::vector<std::string> errors;
  const std::vector<std::string> files =
      collect_files(fixture_options(), &errors);
  EXPECT_TRUE(errors.empty());
  const std::vector<std::string> expected = {
      "src/d1_handlers.cpp", "src/d2_bad.cpp",
      "src/o1_bad.cpp",      "src/r1_bad.cpp",
      "src/wire/decode_bad.cpp", "tests/meta_bad.cpp",
      "tools/e1_bad.cpp",
  };
  EXPECT_EQ(files, expected);
}

// ----------------------------------------------------------- reporters ---

TEST(LintReport, JsonIsWellFormedAndEscaped) {
  const LintResult result = run_lint(fixture_options());
  ASSERT_TRUE(result.errors.empty());
  const std::string json = render_json(result.findings, result.stats);
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_TRUE(contains(json, "\"tool\": \"centaur-lint\""));
  EXPECT_TRUE(contains(json, "\"rule_set_version\": 1"));
  EXPECT_TRUE(contains(json, "\"stats\": {\"files\": 7"));

  // Escaping: quotes, backslashes, and newlines in messages survive.
  Finding hostile;
  hostile.rule = "D2";
  hostile.file = "src/a.cpp";
  hostile.line = 1;
  hostile.col = 2;
  hostile.message = "say \"no\" to back\\slash\nand newline";
  hostile.token = "tok";
  const std::string escaped = render_json({hostile}, ReportStats{});
  EXPECT_TRUE(json_well_formed(escaped)) << escaped;
  EXPECT_TRUE(contains(escaped, "say \\\"no\\\" to back\\\\slash\\nand"));
}

TEST(LintReport, SarifIsWellFormedAndListsEveryRule) {
  const LintResult result = run_lint(fixture_options());
  ASSERT_TRUE(result.errors.empty());
  const std::string sarif = render_sarif(result.findings);
  EXPECT_TRUE(json_well_formed(sarif)) << sarif;
  EXPECT_TRUE(contains(sarif, "json.schemastore.org/sarif-2.1.0.json"));
  EXPECT_TRUE(contains(sarif, "\"version\": \"2.1.0\""));
  EXPECT_TRUE(contains(sarif, "\"physicalLocation\""));
  EXPECT_TRUE(contains(sarif, "\"startLine\""));
  for (const RuleDescription& r : rule_table()) {
    EXPECT_TRUE(contains(sarif, std::string("{\"id\": \"") + r.id + "\""))
        << r.id;
  }
  // One result per finding.
  std::size_t rule_ids = 0;
  for (std::size_t at = sarif.find("\"ruleId\""); at != std::string::npos;
       at = sarif.find("\"ruleId\"", at + 1)) {
    ++rule_ids;
  }
  EXPECT_EQ(rule_ids, result.findings.size());
}

TEST(LintReport, SarifWithNoFindingsIsStillValid) {
  const std::string sarif = render_sarif({});
  EXPECT_TRUE(json_well_formed(sarif)) << sarif;
  EXPECT_TRUE(contains(sarif, "\"results\": []"));
}

TEST(LintReport, TextSummaryCountsFindings) {
  const LintResult result = run_lint(fixture_options());
  ASSERT_TRUE(result.errors.empty());
  const std::string text = render_text(result.findings, result.stats);
  EXPECT_TRUE(
      contains(text, "centaur-lint: 7 file(s), 12 finding(s), 6 suppressed"));
}

}  // namespace
