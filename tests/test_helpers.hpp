// Shared fixtures for protocol-level tests.
//
// In Debug builds (CENTAUR_CHECK) every TestNet attaches the invariant
// analyzer (src/check): Centaur node state is re-validated after each event
// and at every convergence point, and any violation fails the test with the
// analyzer's report.  Non-Centaur nodes are unaffected.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#ifdef CENTAUR_CHECK
#include "check/analyzer.hpp"
#endif
#include "sim/network.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace centaur::testing {

/// Owns a topology + network running one protocol node type per AS node.
/// The factory lets tests inject per-node configs.
template <typename NodeT>
class TestNet {
 public:
  /// Builds the node for `id`; `graph` is the network-owned topology that
  /// protocol nodes must reference (link flips mutate it).
  using Factory =
      std::function<std::unique_ptr<NodeT>(topo::NodeId id, topo::AsGraph&)>;

  TestNet(topo::AsGraph graph, Factory factory, std::uint64_t seed = 1)
      : graph_(std::move(graph)), rng_(seed), net_(graph_, rng_) {
#ifdef CENTAUR_CHECK
    analyzer_ = std::make_unique<check::Analyzer>(net_);
#endif
    for (topo::NodeId v = 0; v < graph_.num_nodes(); ++v) {
      auto node = factory(v, graph_);
      nodes_.push_back(node.get());
      net_.attach(v, std::move(node));
    }
    net_.mark();
    net_.start_all_and_converge();
    analyze_quiescent();
  }

  /// Convenience: default-config nodes built from the graph.
  explicit TestNet(topo::AsGraph graph, std::uint64_t seed = 1)
      : TestNet(
            std::move(graph),
            [](topo::NodeId, topo::AsGraph& g) {
              return std::make_unique<NodeT>(g);
            },
            seed) {}

  sim::Network& net() { return net_; }
  topo::AsGraph& graph() { return graph_; }
  NodeT& node(topo::NodeId v) { return *nodes_.at(v); }

  /// Flips a link and reconverges; returns messages sent in the window.
  std::size_t flip(topo::LinkId link, bool up) {
    net_.mark();
    net_.set_link_state(link, up);
    net_.run_to_convergence();
    analyze_quiescent();
    return net_.window().messages_sent;
  }

 private:
  /// Sweeps every node at a quiescence point and throws (failing the test)
  /// on any recorded violation.  No-op outside CENTAUR_CHECK builds.
  void analyze_quiescent() {
#ifdef CENTAUR_CHECK
    analyzer_->check_all();
    analyzer_->expect_clean();
#endif
  }

  topo::AsGraph graph_;
  util::Rng rng_;
  sim::Network net_;
#ifdef CENTAUR_CHECK
  std::unique_ptr<check::Analyzer> analyzer_;
#endif
  std::vector<NodeT*> nodes_;
};

/// The square topology of the paper's Figure 2(a)/Figure 3:
/// A(0)-B(1), A-C(2), B-D(3), C-D, with every link of relationship `rel`.
inline topo::AsGraph square_topology(
    topo::Relationship rel = topo::Relationship::kSibling) {
  topo::AsGraph g(4);
  g.add_link(0, 1, rel);
  g.add_link(0, 2, rel);
  g.add_link(1, 3, rel);
  g.add_link(2, 3, rel);
  return g;
}

/// Figure 4 topology: the square plus destination D'(4) attached to D(3).
inline topo::AsGraph fig4_topology(
    topo::Relationship rel = topo::Relationship::kSibling) {
  topo::AsGraph g(5);
  g.add_link(2, 0, rel);  // C - A
  g.add_link(0, 1, rel);  // A - B
  g.add_link(1, 3, rel);  // B - D
  g.add_link(2, 3, rel);  // C - D
  g.add_link(3, 4, rel);  // D - D'
  return g;
}

}  // namespace centaur::testing
