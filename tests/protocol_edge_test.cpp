// Edge cases and robustness properties for the protocol implementations:
// import filters, Bloom accounting, origination control, session churn
// storms, simultaneous failures, and determinism.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/bgp_node.hpp"
#include "centaur/centaur_node.hpp"
#include "eval/experiments.hpp"
#include "policy/valley_free.hpp"
#include "test_helpers.hpp"
#include "topology/generator.hpp"

namespace centaur {
namespace {

using centaur::testing::TestNet;
using core::CentaurNode;
using topo::AsGraph;
using topo::LinkId;
using topo::NodeId;
using topo::Path;
using topo::Relationship;

// ----------------------------------------------------- Centaur options ----

TEST(CentaurEdge, ImportFilterBlocksLinks) {
  // A(0)-B(1), A-C(2), B-D(3), C-D; A refuses to import the link B->D, so
  // its only route to D goes via C.
  TestNet<CentaurNode> net(
      centaur::testing::square_topology(), [](NodeId v, AsGraph& g) {
        CentaurNode::Config cfg;
        if (v == 0) {
          cfg.import_link_filter = [](NodeId, NodeId from, NodeId to) {
            return !(from == 1 && to == 3);
          };
        }
        return std::make_unique<CentaurNode>(g, cfg);
      });
  EXPECT_EQ(net.node(0).selected_path(3), (Path{0, 2, 3}));
  // Unfiltered nodes still take the tie-break winner via B.
  EXPECT_EQ(net.node(3).selected_path(0), (Path{3, 1, 0}));
}

TEST(CentaurEdge, OriginationCanBeDisabled) {
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kSibling);
  g.add_link(1, 2, Relationship::kSibling);
  TestNet<CentaurNode> net(g, [](NodeId v, AsGraph& gr) {
    CentaurNode::Config cfg;
    cfg.originate_prefix = (v != 2);
    return std::make_unique<CentaurNode>(gr, cfg);
  });
  EXPECT_FALSE(net.node(0).selected_path(2).has_value());
  EXPECT_TRUE(net.node(2).selected_path(0).has_value());
}

TEST(CentaurEdge, BloomAccountingChangesBytesNotBehaviour) {
  const AsGraph g = centaur::testing::square_topology();
  TestNet<CentaurNode> plain(g);
  TestNet<CentaurNode> bloom(g, [](NodeId, AsGraph& gr) {
    CentaurNode::Config cfg;
    cfg.bloom_plists = true;
    return std::make_unique<CentaurNode>(gr, cfg);
  });
  // Same message count, same routes; only the byte accounting differs.
  EXPECT_EQ(plain.net().window().messages_sent,
            bloom.net().window().messages_sent);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId d = 0; d < g.num_nodes(); ++d) {
      EXPECT_EQ(plain.node(v).selected_path(d), bloom.node(v).selected_path(d));
    }
  }
}

TEST(CentaurEdge, NeighborPgraphAbsentForStrangers) {
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(1, 2, Relationship::kPeer);
  TestNet<CentaurNode> net(g);
  EXPECT_NE(net.node(0).neighbor_pgraph(1), nullptr);
  EXPECT_EQ(net.node(0).neighbor_pgraph(2), nullptr);  // not adjacent
}

TEST(CentaurEdge, UpdateDescribeIsInformative) {
  core::GraphDelta d;
  d.reset = true;
  d.upserts.emplace_back(core::DirectedLink{1, 2}, core::PermissionList{});
  d.dest_adds.push_back(7);
  const core::CentaurUpdate msg(d, false);
  const std::string s = msg.describe();
  EXPECT_NE(s.find("+1 links"), std::string::npos);
  EXPECT_NE(s.find("+1 dests"), std::string::npos);
  EXPECT_NE(s.find("reset"), std::string::npos);
  // Exact codec length: more than an empty delta (6 bytes), and equal to
  // the delta's own accounting.
  EXPECT_GT(msg.byte_size(), 6u);
  EXPECT_EQ(msg.byte_size(), msg.delta().byte_size(false));
}

// ------------------------------------------------------- churn storms -----

template <typename NodeT>
void expect_matches_solver(TestNet<NodeT>& net, const AsGraph& graph) {
  for (NodeId dest = 0; dest < graph.num_nodes(); ++dest) {
    const auto solver = policy::ValleyFreeRoutes::compute(graph, dest);
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (v == dest) continue;
      const auto got = net.node(v).selected_path(dest);
      if (!solver.at(v).reachable()) {
        EXPECT_FALSE(got.has_value()) << v << "->" << dest;
      } else {
        ASSERT_TRUE(got.has_value()) << v << "->" << dest;
        EXPECT_EQ(*got, solver.path_from(v)) << v << "->" << dest;
      }
    }
  }
}

TEST(ChurnStorm, SimultaneousFailuresConvergeToSolver) {
  util::Rng rng(71);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(40), rng);
  TestNet<CentaurNode> centaur(graph);
  TestNet<bgp::BgpNode> bgp(graph);

  // Take three links down at (nearly) the same instant, converge once.
  util::Rng pick(5);
  const auto victims = pick.sample_without_replacement(graph.num_links(), 3);
  for (const std::size_t raw : victims) {
    centaur.net().set_link_state(static_cast<LinkId>(raw), false);
    bgp.net().set_link_state(static_cast<LinkId>(raw), false);
  }
  centaur.net().run_to_convergence();
  bgp.net().run_to_convergence();
  expect_matches_solver(centaur, centaur.graph());
  expect_matches_solver(bgp, bgp.graph());

  // And back up, all at once.
  for (const std::size_t raw : victims) {
    centaur.net().set_link_state(static_cast<LinkId>(raw), true);
    bgp.net().set_link_state(static_cast<LinkId>(raw), true);
  }
  centaur.net().run_to_convergence();
  bgp.net().run_to_convergence();
  expect_matches_solver(centaur, centaur.graph());
  expect_matches_solver(bgp, bgp.graph());
}

TEST(ChurnStorm, RapidFlapsOfOneLinkSettleCorrectly) {
  util::Rng rng(72);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(30), rng);
  TestNet<CentaurNode> net(graph);
  const LinkId victim = 3;
  // Flap the link several times without waiting for convergence: in-flight
  // updates get dropped, sessions reset — the protocol must still settle to
  // the correct final (up) state.
  for (int i = 0; i < 4; ++i) {
    net.net().set_link_state(victim, false);
    net.net().simulator().run_until(net.net().simulator().now() + 0.001);
    net.net().set_link_state(victim, true);
    net.net().simulator().run_until(net.net().simulator().now() + 0.001);
  }
  net.net().run_to_convergence();
  expect_matches_solver(net, net.graph());
}

TEST(ChurnStorm, NodeIsolationAndRecovery) {
  util::Rng rng(73);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(25), rng);
  TestNet<CentaurNode> net(graph);
  // Cut every link of one node, converge, then restore.
  const NodeId victim = 20;
  std::vector<LinkId> cut;
  for (const topo::Neighbor& nb : graph.neighbors(victim)) {
    cut.push_back(nb.link);
  }
  for (const LinkId l : cut) net.net().set_link_state(l, false);
  net.net().run_to_convergence();
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (v == victim) continue;
    EXPECT_FALSE(net.node(v).selected_path(victim).has_value())
        << v << " still routes to the isolated node";
  }
  for (const LinkId l : cut) net.net().set_link_state(l, true);
  net.net().run_to_convergence();
  expect_matches_solver(net, net.graph());
}

// ------------------------------------------------------- determinism ------

TEST(Determinism, IdenticalRunsProduceIdenticalTraffic) {
  util::Rng rng(74);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(35), rng);
  for (const auto proto :
       {eval::Protocol::kBgp, eval::Protocol::kCentaur, eval::Protocol::kOspf,
        eval::Protocol::kBgpRcn}) {
    util::Rng r1(9), r2(9);
    eval::ProtocolRun a(graph, proto, r1);
    eval::ProtocolRun b(graph, proto, r2);
    EXPECT_EQ(a.cold_start().messages_sent, b.cold_start().messages_sent)
        << eval::to_string(proto);
    EXPECT_EQ(a.cold_start().bytes_sent, b.cold_start().bytes_sent)
        << eval::to_string(proto);
    EXPECT_DOUBLE_EQ(a.cold_start_time(), b.cold_start_time())
        << eval::to_string(proto);
  }
}

// ------------------------------------------------ same-burst coalescing ---

// Runs all-Centaur nodes over `graph` with *constant* link delays, so every
// wave of a cascade arrives as one same-instant burst per node — the regime
// where the outbound coalescing slot actually merges deltas.  (With the
// default continuous random delays, same-instant multi-floods are measure
// zero and coalescing is a near no-op.)
struct ConstDelayRun {
  topo::AsGraph graph;
  util::Rng rng;
  sim::Network net;
  std::vector<core::CentaurNode*> nodes;

  ConstDelayRun(const AsGraph& g, bool coalesce)
      : graph(g), rng(7), net(graph, rng, /*min_delay=*/0.001,
                              /*max_delay=*/0.001) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      CentaurNode::Config cfg;
      cfg.coalesce_updates = coalesce;
      auto node = std::make_unique<CentaurNode>(graph, cfg);
      nodes.push_back(node.get());
      net.attach(v, std::move(node));
    }
    net.mark();
    net.start_all_and_converge();
  }
};

void expect_identical_paths(ConstDelayRun& a, ConstDelayRun& b) {
  for (NodeId v = 0; v < a.graph.num_nodes(); ++v) {
    for (NodeId d = 0; d < a.graph.num_nodes(); ++d) {
      EXPECT_EQ(a.nodes[v]->selected_path(d), b.nodes[v]->selected_path(d))
          << v << "->" << d;
    }
  }
}

TEST(CentaurCoalescing, ConstantDelayColdStartMergesBursts) {
  util::Rng topo_rng(11);
  const AsGraph g = topo::brite_like(24, 2, 3, topo_rng);
  ConstDelayRun merged(g, /*coalesce=*/true);
  ConstDelayRun unmerged(g, /*coalesce=*/false);
  // Same routing outcome, strictly fewer messages and bytes on the wire.
  expect_identical_paths(merged, unmerged);
  EXPECT_LT(merged.net.window().messages_sent,
            unmerged.net.window().messages_sent);
  EXPECT_LT(merged.net.window().bytes_sent, unmerged.net.window().bytes_sent);
}

TEST(CentaurCoalescing, FailuresConvergeIdenticallyWithNoExtraMessages) {
  util::Rng topo_rng(23);
  const AsGraph g = topo::brite_like(20, 2, 3, topo_rng);
  ConstDelayRun merged(g, /*coalesce=*/true);
  ConstDelayRun unmerged(g, /*coalesce=*/false);
  for (const LinkId link : {LinkId{0}, LinkId{7}}) {
    for (const bool up : {false, true}) {
      merged.net.mark();
      merged.net.set_link_state(link, up);
      merged.net.run_to_convergence();
      unmerged.net.mark();
      unmerged.net.set_link_state(link, up);
      unmerged.net.run_to_convergence();
      EXPECT_LE(merged.net.window().messages_sent,
                unmerged.net.window().messages_sent);
      expect_identical_paths(merged, unmerged);
    }
  }
}

TEST(Determinism, ByteCountsArePositiveAndProtocolSpecific) {
  util::Rng rng(75);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(30), rng);
  util::Rng r1(1), r2(1), r3(1);
  eval::ProtocolRun bgp(graph, eval::Protocol::kBgp, r1);
  eval::ProtocolRun centaur(graph, eval::Protocol::kCentaur, r2);
  eval::ProtocolRun ospf(graph, eval::Protocol::kOspf, r3);
  EXPECT_GT(bgp.cold_start().bytes_sent, 0u);
  EXPECT_GT(centaur.cold_start().bytes_sent, 0u);
  EXPECT_GT(ospf.cold_start().bytes_sent, 0u);
}

}  // namespace
}  // namespace centaur
