#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "centaur/centaur_node.hpp"
#include "eval/experiments.hpp"
#include "runner/parallel.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace centaur {
namespace {

// ---------------------------------------------------------- run_trials ----

TEST(RunTrials, PreservesIndexOrder) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto out = runner::run_trials(
        100, threads, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(RunTrials, ZeroTrials) {
  EXPECT_TRUE(runner::run_trials(0, 4, [](std::size_t i) { return i; })
                  .empty());
}

TEST(RunTrials, PropagatesFirstException) {
  const auto boom = [](std::size_t i) -> int {
    if (i == 3) throw std::runtime_error("trial 3 failed");
    return 0;
  };
  EXPECT_THROW(runner::run_trials(8, 4, boom), std::runtime_error);
  EXPECT_THROW(runner::run_trials(8, 1, boom), std::runtime_error);
}

TEST(ThreadsFromEnv, ReadsOverride) {
  ASSERT_EQ(setenv("CENTAUR_THREADS", "3", 1), 0);
  EXPECT_EQ(runner::threads_from_env(), 3u);
  ASSERT_EQ(setenv("CENTAUR_THREADS", "0", 1), 0);
  EXPECT_GE(runner::threads_from_env(), 1u);  // clamped to >= 1
  ASSERT_EQ(unsetenv("CENTAUR_THREADS"), 0);
  EXPECT_GE(runner::threads_from_env(), 1u);
}

// ------------------------------------------- parallel == serial, exactly --

/// Everything observable from one protocol trial: the flip-series numbers
/// plus every node's selected path toward every destination.
struct TrialObservation {
  std::vector<double> convergence_times;
  std::vector<double> message_counts;
  std::size_t cold_start_messages = 0;
  std::uint64_t events = 0;
  std::size_t total_messages = 0;
  std::size_t total_bytes = 0;
  std::vector<std::map<topo::NodeId, topo::Path>> selected;  // per node

  bool operator==(const TrialObservation&) const = default;
};

/// One independent trial: its own topology-flip RNG derived from the trial
/// index, a fresh Centaur run, a measured flip sequence, and a full dump of
/// the per-node selected paths afterwards.
TrialObservation centaur_trial(const topo::AsGraph& g, std::size_t index) {
  util::Rng rng(util::derive_seed(0xC0FFEE, index));
  eval::RunOptions opts;
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng, opts);

  TrialObservation obs;
  obs.cold_start_messages = run.cold_start().messages_sent;
  for (int f = 0; f < 2; ++f) {
    const auto link = static_cast<topo::LinkId>(rng.next() % g.num_links());
    for (const bool up : {false, true}) {
      const auto t = run.flip(link, up);
      obs.convergence_times.push_back(t.convergence_time);
      obs.message_counts.push_back(static_cast<double>(t.messages));
    }
  }
  obs.events = run.network().events_executed();
  obs.total_messages = run.network().total_messages();
  obs.total_bytes = run.network().total_bytes();
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto* node =
        dynamic_cast<const core::CentaurNode*>(&run.network().node(v));
    if (node == nullptr) {  // thrown (not ASSERTed): trials run off-thread
      throw std::logic_error("expected a CentaurNode");
    }
    obs.selected.push_back(node->selected_paths());
  }
  return obs;
}

TEST(RunTrials, ParallelRunsAreBitIdenticalToSerial) {
  // Mid-size topology (the upper end of what the protocol test sweep
  // uses — Debug builds run the invariant analyzer inside every Centaur
  // run, so bigger graphs would dominate the tier-1 wall time); four
  // trials whose inputs are a pure function of the trial index.  The
  // 4-thread fan-out must reproduce the serial run exactly: same selected
  // paths at every node, same message counts, same convergence times.
  util::Rng topo_rng(0x5EED);
  const topo::AsGraph g = topo::brite_like(45, 2, 4, topo_rng);
  const std::size_t trials = 4;

  const auto serial = runner::run_trials(
      trials, 1, [&](std::size_t i) { return centaur_trial(g, i); });
  const auto parallel = runner::run_trials(
      trials, 4, [&](std::size_t i) { return centaur_trial(g, i); });

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < trials; ++i) {
    EXPECT_EQ(serial[i].convergence_times, parallel[i].convergence_times)
        << "trial " << i;
    EXPECT_EQ(serial[i].message_counts, parallel[i].message_counts)
        << "trial " << i;
    EXPECT_EQ(serial[i].cold_start_messages, parallel[i].cold_start_messages);
    EXPECT_EQ(serial[i].events, parallel[i].events) << "trial " << i;
    EXPECT_EQ(serial[i].total_messages, parallel[i].total_messages);
    EXPECT_EQ(serial[i].total_bytes, parallel[i].total_bytes);
    EXPECT_EQ(serial[i].selected, parallel[i].selected) << "trial " << i;
  }
  // Trials with different indices draw different flip sequences — the
  // equality above is not vacuous.
  EXPECT_NE(serial[0].convergence_times, serial[1].convergence_times);
}

TEST(RunTrials, FlipSeriesMatchesAcrossThreadCounts) {
  // The bench drivers fan eval::run_link_flips itself; check that whole
  // pipeline too (cold start + measured flips + totals).
  util::Rng topo_rng(0x5EED + 1);
  const topo::AsGraph g = topo::brite_like(30, 2, 4, topo_rng);
  const eval::Protocol protos[] = {eval::Protocol::kCentaur,
                                   eval::Protocol::kBgp};
  const auto trial = [&](std::size_t i) {
    eval::FlipSeries s = eval::run_link_flips(
        g, protos[i % 2], 3, util::Rng(util::derive_seed(7, i / 2)));
    return s;
  };
  const auto serial = runner::run_trials(4, 1, trial);
  const auto parallel = runner::run_trials(4, 4, trial);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].convergence_times, parallel[i].convergence_times);
    EXPECT_EQ(serial[i].message_counts, parallel[i].message_counts);
    EXPECT_EQ(serial[i].cold_start.messages_sent,
              parallel[i].cold_start.messages_sent);
    EXPECT_EQ(serial[i].events, parallel[i].events);
    EXPECT_EQ(serial[i].total_messages, parallel[i].total_messages);
    EXPECT_EQ(serial[i].total_bytes, parallel[i].total_bytes);
  }
}

}  // namespace
}  // namespace centaur
