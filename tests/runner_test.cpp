#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <map>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "centaur/centaur_node.hpp"
#include "eval/experiments.hpp"
#include "runner/parallel.hpp"
#include "topology/generator.hpp"
#include "util/env.hpp"
#include "util/scale.hpp"
#include "util/rng.hpp"

namespace centaur {
namespace {

// ---------------------------------------------------------- run_trials ----

TEST(RunTrials, PreservesIndexOrder) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto out = runner::run_trials(
        100, threads, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(RunTrials, ZeroTrials) {
  EXPECT_TRUE(runner::run_trials(0, 4, [](std::size_t i) { return i; })
                  .empty());
}

TEST(RunTrials, PropagatesFirstException) {
  const auto boom = [](std::size_t i) -> int {
    if (i == 3) throw std::runtime_error("trial 3 failed");
    return 0;
  };
  EXPECT_THROW(runner::run_trials(8, 4, boom), std::runtime_error);
  EXPECT_THROW(runner::run_trials(8, 1, boom), std::runtime_error);
}

TEST(ThreadsFromEnv, ReadsOverride) {
  ASSERT_EQ(setenv("CENTAUR_THREADS", "3", 1), 0);
  EXPECT_EQ(runner::threads_from_env(), 3u);
  ASSERT_EQ(setenv("CENTAUR_THREADS", "0", 1), 0);
  EXPECT_GE(runner::threads_from_env(), 1u);  // clamped to >= 1
  ASSERT_EQ(unsetenv("CENTAUR_THREADS"), 0);
  EXPECT_GE(runner::threads_from_env(), 1u);
}

TEST(ThreadsFromEnv, RejectsGarbage) {
  util::reset_warn_once_for_testing();
  const std::size_t fallback = runner::threads_from_env();  // unset baseline
  for (const char* bad : {"abc", "4x", " 4", "4 ", "1e3", "0x10", "--2", ""}) {
    ASSERT_EQ(setenv("CENTAUR_THREADS", bad, 1), 0);
    EXPECT_EQ(runner::threads_from_env(), fallback) << "value '" << bad << "'";
  }
  ASSERT_EQ(setenv("CENTAUR_THREADS", "-7", 1), 0);
  EXPECT_EQ(runner::threads_from_env(), 1u);  // numeric but < 1: clamp
  ASSERT_EQ(unsetenv("CENTAUR_THREADS"), 0);
}

TEST(IntraThreadsFromEnv, DefaultsSerialAndParsesStrictly) {
  util::reset_warn_once_for_testing();
  ASSERT_EQ(unsetenv("CENTAUR_INTRA_THREADS"), 0);
  EXPECT_EQ(runner::intra_threads_from_env(), 1u);  // opt-in: default serial
  ASSERT_EQ(setenv("CENTAUR_INTRA_THREADS", "4", 1), 0);
  EXPECT_EQ(runner::intra_threads_from_env(), 4u);
  ASSERT_EQ(setenv("CENTAUR_INTRA_THREADS", "bogus", 1), 0);
  EXPECT_EQ(runner::intra_threads_from_env(), 1u);
  ASSERT_EQ(setenv("CENTAUR_INTRA_THREADS", "0", 1), 0);
  EXPECT_EQ(runner::intra_threads_from_env(), 1u);
  ASSERT_EQ(unsetenv("CENTAUR_INTRA_THREADS"), 0);
}

// -------------------------------------------------------- TrialFailure ----

TEST(RunTrials, FailureReportsIndexAndCompletion) {
  const auto boom = [](std::size_t i) -> int {
    if (i == 3) throw std::invalid_argument("trial 3 exploded");
    return static_cast<int>(i);
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    try {
      runner::run_trials(8, threads, boom);
      FAIL() << "expected TrialFailure, threads=" << threads;
    } catch (const runner::TrialFailure& e) {
      EXPECT_EQ(e.failed_index(), 3u) << "threads=" << threads;
      EXPECT_LT(e.completed(), 8u);  // caller can tell results are partial
      EXPECT_NE(std::string(e.what()).find("trial 3"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("exploded"), std::string::npos);
      // The original exception is nested for callers that need its type.
      bool nested_seen = false;
      try {
        std::rethrow_if_nested(e);
      } catch (const std::invalid_argument&) {
        nested_seen = true;
      }
      EXPECT_TRUE(nested_seen) << "threads=" << threads;
    }
  }
}

TEST(RunTrials, SerialFailureReportsExactCompletedCount) {
  // Serial execution is deterministic: exactly the trials before the failed
  // index completed, so completed() must equal failed_index().
  const auto boom = [](std::size_t i) -> int {
    if (i == 5) throw std::runtime_error("boom");
    return 0;
  };
  try {
    runner::run_trials(8, 1, boom);
    FAIL() << "expected TrialFailure";
  } catch (const runner::TrialFailure& e) {
    EXPECT_EQ(e.failed_index(), 5u);
    EXPECT_EQ(e.completed(), 5u);
  }
}

// ---------------------------------------------------------- WorkerPool ----

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  runner::WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for_deterministic(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusableAcrossSections) {
  runner::WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for_deterministic(
        7, [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 350);
}

TEST(WorkerPool, SingleThreadRunsInline) {
  runner::WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> order;  // safe: inline serial execution, no data race
  pool.parallel_for_deterministic(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, RethrowsLowestIndexFailure) {
  runner::WorkerPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.parallel_for_deterministic(64, [&](std::size_t i) {
        if (i == 7 || i == 40) {
          throw std::runtime_error("body " + std::to_string(i));
        }
      });
      FAIL() << "expected a body failure to surface";
    } catch (const std::runtime_error& e) {
      // Among bodies that ran, the lowest failing index wins; index 7 is
      // claimed before 40, so it must be the one reported.
      EXPECT_STREQ(e.what(), "body 7");
    }
    // The pool stays usable after a failed section.
    std::atomic<int> ok{0};
    pool.parallel_for_deterministic(
        8, [&](std::size_t) { ok.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(ok.load(), 8);
  }
}

// ------------------------------------------------------- strict parsing ---

TEST(EnvStrict, ParseIntStrict) {
  using util::parse_int_strict;
  EXPECT_EQ(parse_int_strict("42").value(), 42);
  EXPECT_EQ(parse_int_strict("+42").value(), 42);
  EXPECT_EQ(parse_int_strict("-42").value(), -42);
  EXPECT_EQ(parse_int_strict("0").value(), 0);
  EXPECT_FALSE(parse_int_strict(""));
  EXPECT_FALSE(parse_int_strict("+"));
  EXPECT_FALSE(parse_int_strict("-"));
  EXPECT_FALSE(parse_int_strict("4 "));
  EXPECT_FALSE(parse_int_strict(" 4"));
  EXPECT_FALSE(parse_int_strict("4x"));
  EXPECT_FALSE(parse_int_strict("x4"));
  EXPECT_FALSE(parse_int_strict("1e3"));
  EXPECT_FALSE(parse_int_strict("0x10"));
  EXPECT_FALSE(parse_int_strict("99999999999999999999999"));  // overflow
}

TEST(EnvStrict, FlagStrictRecognisedValuesOnly) {
  util::reset_warn_once_for_testing();
  ASSERT_EQ(setenv("CENTAUR_TEST_FLAG", "on", 1), 0);
  EXPECT_TRUE(util::env_flag_strict("CENTAUR_TEST_FLAG", false));
  ASSERT_EQ(setenv("CENTAUR_TEST_FLAG", "off", 1), 0);
  EXPECT_FALSE(util::env_flag_strict("CENTAUR_TEST_FLAG", true));
  for (const char* t : {"1", "true", "yes"}) {
    ASSERT_EQ(setenv("CENTAUR_TEST_FLAG", t, 1), 0);
    EXPECT_TRUE(util::env_flag_strict("CENTAUR_TEST_FLAG", false)) << t;
  }
  for (const char* f : {"0", "false", "no", ""}) {
    ASSERT_EQ(setenv("CENTAUR_TEST_FLAG", f, 1), 0);
    EXPECT_FALSE(util::env_flag_strict("CENTAUR_TEST_FLAG", true)) << f;
  }
  // Unrecognised text keeps the fallback instead of silently meaning "true"
  // (the old behaviour turned CENTAUR_COALESCE=fasle into an ablation arm).
  ASSERT_EQ(setenv("CENTAUR_TEST_FLAG", "fasle", 1), 0);
  EXPECT_TRUE(util::env_flag_strict("CENTAUR_TEST_FLAG", true));
  EXPECT_FALSE(util::env_flag_strict("CENTAUR_TEST_FLAG", false));
  ASSERT_EQ(unsetenv("CENTAUR_TEST_FLAG"), 0);
}

TEST(EnvStrict, WarnOnceIsOncePerKey) {
  util::reset_warn_once_for_testing();
  EXPECT_TRUE(util::warn_once("k1", "first"));
  EXPECT_FALSE(util::warn_once("k1", "suppressed"));
  EXPECT_TRUE(util::warn_once("k2", "different key"));
  util::reset_warn_once_for_testing();
  EXPECT_TRUE(util::warn_once("k1", "after reset"));
}

TEST(EnvStrict, ScaleFallsBackOnUnknownValue) {
  util::reset_warn_once_for_testing();
  ASSERT_EQ(setenv("CENTAUR_SCALE", "SMOKE", 1), 0);  // case-insensitive
  EXPECT_EQ(util::scale_from_env(), util::Scale::kSmoke);
  ASSERT_EQ(setenv("CENTAUR_SCALE", "lrage", 1), 0);  // typo -> default
  EXPECT_EQ(util::scale_from_env(), util::Scale::kDefault);
  ASSERT_EQ(unsetenv("CENTAUR_SCALE"), 0);
  EXPECT_EQ(util::scale_from_env(), util::Scale::kDefault);
}

// ------------------------------------------- parallel == serial, exactly --

/// Everything observable from one protocol trial: the flip-series numbers
/// plus every node's selected path toward every destination.
struct TrialObservation {
  std::vector<double> convergence_times;
  std::vector<double> message_counts;
  std::size_t cold_start_messages = 0;
  std::uint64_t events = 0;
  std::size_t total_messages = 0;
  std::size_t total_bytes = 0;
  std::vector<std::map<topo::NodeId, topo::Path>> selected;  // per node

  bool operator==(const TrialObservation&) const = default;
};

/// One independent trial: its own topology-flip RNG derived from the trial
/// index, a fresh Centaur run, a measured flip sequence, and a full dump of
/// the per-node selected paths afterwards.
TrialObservation centaur_trial(const topo::AsGraph& g, std::size_t index) {
  util::Rng rng(util::derive_seed(0xC0FFEE, index));
  eval::RunOptions opts;
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng, opts);

  TrialObservation obs;
  obs.cold_start_messages = run.cold_start().messages_sent;
  for (int f = 0; f < 2; ++f) {
    const auto link = static_cast<topo::LinkId>(rng.next() % g.num_links());
    for (const bool up : {false, true}) {
      const auto t = run.flip(link, up);
      obs.convergence_times.push_back(t.convergence_time);
      obs.message_counts.push_back(static_cast<double>(t.messages));
    }
  }
  obs.events = run.network().events_executed();
  obs.total_messages = run.network().total_messages();
  obs.total_bytes = run.network().total_bytes();
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto* node =
        dynamic_cast<const core::CentaurNode*>(&run.network().node(v));
    if (node == nullptr) {  // thrown (not ASSERTed): trials run off-thread
      throw std::logic_error("expected a CentaurNode");
    }
    obs.selected.emplace_back(node->selected_paths().begin(),
                              node->selected_paths().end());
  }
  return obs;
}

TEST(RunTrials, ParallelRunsAreBitIdenticalToSerial) {
  // Mid-size topology (the upper end of what the protocol test sweep
  // uses — Debug builds run the invariant analyzer inside every Centaur
  // run, so bigger graphs would dominate the tier-1 wall time); four
  // trials whose inputs are a pure function of the trial index.  The
  // 4-thread fan-out must reproduce the serial run exactly: same selected
  // paths at every node, same message counts, same convergence times.
  util::Rng topo_rng(0x5EED);
  const topo::AsGraph g = topo::brite_like(45, 2, 4, topo_rng);
  const std::size_t trials = 4;

  const auto serial = runner::run_trials(
      trials, 1, [&](std::size_t i) { return centaur_trial(g, i); });
  const auto parallel = runner::run_trials(
      trials, 4, [&](std::size_t i) { return centaur_trial(g, i); });

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < trials; ++i) {
    EXPECT_EQ(serial[i].convergence_times, parallel[i].convergence_times)
        << "trial " << i;
    EXPECT_EQ(serial[i].message_counts, parallel[i].message_counts)
        << "trial " << i;
    EXPECT_EQ(serial[i].cold_start_messages, parallel[i].cold_start_messages);
    EXPECT_EQ(serial[i].events, parallel[i].events) << "trial " << i;
    EXPECT_EQ(serial[i].total_messages, parallel[i].total_messages);
    EXPECT_EQ(serial[i].total_bytes, parallel[i].total_bytes);
    EXPECT_EQ(serial[i].selected, parallel[i].selected) << "trial " << i;
  }
  // Trials with different indices draw different flip sequences — the
  // equality above is not vacuous.
  EXPECT_NE(serial[0].convergence_times, serial[1].convergence_times);
}

TEST(RunTrials, FlipSeriesMatchesAcrossThreadCounts) {
  // The bench drivers fan eval::run_link_flips itself; check that whole
  // pipeline too (cold start + measured flips + totals).
  util::Rng topo_rng(0x5EED + 1);
  const topo::AsGraph g = topo::brite_like(30, 2, 4, topo_rng);
  const eval::Protocol protos[] = {eval::Protocol::kCentaur,
                                   eval::Protocol::kBgp};
  const auto trial = [&](std::size_t i) {
    eval::FlipSeries s = eval::run_link_flips(
        g, protos[i % 2], 3, util::Rng(util::derive_seed(7, i / 2)));
    return s;
  };
  const auto serial = runner::run_trials(4, 1, trial);
  const auto parallel = runner::run_trials(4, 4, trial);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].convergence_times, parallel[i].convergence_times);
    EXPECT_EQ(serial[i].message_counts, parallel[i].message_counts);
    EXPECT_EQ(serial[i].cold_start.messages_sent,
              parallel[i].cold_start.messages_sent);
    EXPECT_EQ(serial[i].events, parallel[i].events);
    EXPECT_EQ(serial[i].total_messages, parallel[i].total_messages);
    EXPECT_EQ(serial[i].total_bytes, parallel[i].total_bytes);
  }
}

}  // namespace
}  // namespace centaur
