// Bit-identity proof for the sharded event plane (DESIGN.md §13).
//
// CENTAUR_SHARDS must be purely a wall-clock/memory knob: for any shard
// count, serial or with worker lanes, every observable of a run —
// convergence times, message/byte/event counters, per-node selected paths,
// analyzer check counts — must equal the unsharded serial run bit for bit.
// These tests re-run the tier-1 smoke analogues of the figure experiments
// and the builtin reliability campaign across the {shards} x {lanes} matrix
// and compare everything, plus unit tests of the partitioner and of the
// shard channel/barrier ordering contract at the Simulator level.  The CI
// TSan job runs this binary to also prove the lane phase is race-free.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "centaur/centaur_node.hpp"
#include "eval/experiments.hpp"
#include "faults/campaign.hpp"
#include "faults/scenario.hpp"
#include "sim/simulator.hpp"
#include "topology/generator.hpp"
#include "topology/partition.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace centaur {
namespace {

/// Sets one environment variable for the duration of a scope (the Network
/// constructor samples CENTAUR_SHARDS / CENTAUR_INTRA_THREADS), restoring
/// the previous value on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, std::size_t value) : name_(name) {
    const std::optional<std::string> prev = util::env_string(name);
    if (prev) saved_ = *prev;
    had_prev_ = prev.has_value();
    EXPECT_EQ(setenv(name, std::to_string(value).c_str(), 1), 0);
  }
  ~ScopedEnv() {
    if (had_prev_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_prev_ = false;
  std::string saved_;
};

// ------------------------------------------------------------ partitioner --

TEST(Partition, CoversAllNodesWithContiguousNonEmptyRanges) {
  util::Rng rng(0x9A7);
  const topo::AsGraph g = topo::brite_like(53, 2, 4, rng);
  for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u}) {
    const topo::Partition p = topo::partition_contiguous(g, shards);
    ASSERT_EQ(p.num_shards, shards);
    ASSERT_EQ(p.ranges.size(), shards);
    ASSERT_EQ(p.shard_of_node.size(), g.num_nodes());
    topo::NodeId expect_first = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto [first, last] = p.ranges[s];
      EXPECT_EQ(first, expect_first) << "shard " << s;
      EXPECT_LT(first, last) << "shard " << s << " must own >= 1 node";
      for (topo::NodeId v = first; v < last; ++v) {
        EXPECT_EQ(p.shard_of(v), s);
      }
      expect_first = last;
    }
    EXPECT_EQ(expect_first, g.num_nodes());
  }
}

TEST(Partition, BoundaryLinksAreExactlyTheCrossShardLinks) {
  util::Rng rng(0x9A8);
  const topo::AsGraph g = topo::brite_like(40, 2, 4, rng);
  const topo::Partition p = topo::partition_contiguous(g, 4);
  std::vector<topo::LinkId> expect;
  for (topo::LinkId l = 0; l < g.num_links(); ++l) {
    const topo::Link& link = g.link(l);
    if (p.shard_of(link.a) != p.shard_of(link.b)) expect.push_back(l);
  }
  EXPECT_EQ(p.boundary_links, expect);
  EXPECT_EQ(p.internal_links() + p.boundary_links.size(), g.num_links());
}

TEST(Partition, IsDeterministic) {
  util::Rng rng(0x9A9);
  const topo::AsGraph g = topo::brite_like(31, 2, 4, rng);
  const topo::Partition a = topo::partition_contiguous(g, 3);
  const topo::Partition b = topo::partition_contiguous(g, 3);
  EXPECT_EQ(a.shard_of_node, b.shard_of_node);
  EXPECT_EQ(a.ranges, b.ranges);
  EXPECT_EQ(a.boundary_links, b.boundary_links);
}

TEST(Partition, ClampsShardCountToNodeCount) {
  util::Rng rng(0x9AA);
  const topo::AsGraph g = topo::brite_like(5, 1, 2, rng);
  const topo::Partition p = topo::partition_contiguous(g, 64);
  EXPECT_EQ(p.num_shards, 5u);
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_EQ(p.ranges[s].second - p.ranges[s].first, 1u);
  }
}

// --------------------------------------- channel / barrier ordering unit ---

std::vector<std::uint32_t> shard_map(std::initializer_list<std::uint32_t> m) {
  return std::vector<std::uint32_t>(m);
}

TEST(ShardedSimulator, CrossShardSchedulesKeepSerialOrder) {
  // Two nodes in different shards ping-pong zero-delay events; the
  // observable execution log must match the unsharded run exactly, for
  // serial sharded and for lane-parallel sharded execution.
  const auto run_with = [&](std::size_t shards, std::size_t lanes) {
    sim::Simulator sim;
    if (shards > 1) sim.set_shards(2, shard_map({0, 1}));
    sim.set_intra_threads(lanes);
    std::vector<int> log;
    int hops = 0;
    // Every batch here is a singleton (the ping-pong advances time each
    // hop), so the log push always runs inline on the simulator thread.
    std::function<void(std::uint32_t)> hop = [&](std::uint32_t at_node) {
      log.push_back(static_cast<int>(at_node));
      if (++hops >= 8) return;
      const std::uint32_t next = at_node == 0 ? 1 : 0;
      sim.schedule_tagged(0.001, next, [&, next] { hop(next); });
    };
    sim.schedule_tagged(0, 0, [&] { hop(0); });
    sim.run();
    return log;
  };
  const std::vector<int> reference = run_with(1, 1);
  EXPECT_EQ(run_with(2, 1), reference);
  EXPECT_EQ(run_with(2, 4), reference);
}

TEST(ShardedSimulator, SameInstantFanOutMatchesSerialSeqOrder) {
  // One event fans out same-instant work to every node across 4 shards;
  // those events fan out again.  Execution order must equal the unsharded
  // serial order for every (shards, lanes) combination.
  const auto run_with = [&](std::size_t shards, std::size_t lanes) {
    constexpr std::uint32_t kNodes = 8;
    sim::Simulator sim;
    if (shards > 1) {
      sim.set_shards(shards == 2 ? 2 : 4,
                     shards == 2 ? shard_map({0, 0, 0, 0, 1, 1, 1, 1})
                                 : shard_map({0, 0, 1, 1, 2, 2, 3, 3}));
    }
    sim.set_intra_threads(lanes);
    std::vector<std::vector<int>> per_node(kNodes);  // lane-private slots
    std::vector<int> commit_log;                     // barrier-ordered
    const auto commit = [&](int v) {
      if (sim::in_parallel_phase()) {
        sim::defer_commit_op([&, v] { commit_log.push_back(v); });
      } else {
        commit_log.push_back(v);
      }
    };
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      sim.schedule_tagged(0.001, n, [&, n] {
        per_node[n].push_back(static_cast<int>(n));
        commit(static_cast<int>(n));
        // Same-instant follow-up into the "next" node — cross-shard for
        // boundary nodes, same-shard otherwise.
        const std::uint32_t next = (n + 1) % kNodes;
        sim.schedule_tagged(0, next, [&, n, next] {
          per_node[next].push_back(100 + static_cast<int>(n));
          commit(100 + static_cast<int>(n));
        });
      });
    }
    sim.run();
    return std::make_pair(per_node, commit_log);
  };
  const auto reference = run_with(1, 1);
  for (const std::size_t shards : {2u, 4u}) {
    for (const std::size_t lanes : {1u, 4u}) {
      EXPECT_EQ(run_with(shards, lanes), reference)
          << "shards=" << shards << " lanes=" << lanes;
    }
  }
}

TEST(ShardedSimulator, ChannelCountsAreLaneCountInvariant) {
  // channel_messages() is part of the determinism contract: counted at the
  // issuing event (lane push or serial direct schedule), never at replay.
  const auto run_with = [&](std::size_t lanes) {
    sim::Simulator sim;
    sim.set_shards(2, shard_map({0, 0, 1, 1}));
    sim.set_intra_threads(lanes);
    for (std::uint32_t n = 0; n < 4; ++n) {
      sim.schedule_tagged(0.001, n, [&sim, n] {
        // Every node messages every other node: 2 cross-shard sends each.
        for (std::uint32_t to = 0; to < 4; ++to) {
          if (to != n) sim.schedule_tagged(0.001, to, [] {});
        }
      });
    }
    sim.run();
    std::vector<std::uint64_t> counts;
    for (std::size_t s = 0; s < 2; ++s) {
      for (std::size_t d = 0; d < 2; ++d) {
        counts.push_back(sim.channel_messages(s, d));
      }
    }
    std::vector<std::uint64_t> events;
    for (const auto& st : sim.shard_stats()) events.push_back(st.events);
    return std::make_pair(counts, events);
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  EXPECT_EQ(serial, parallel);
  // 2 nodes per shard x 2 cross-shard targets each, on each side; the
  // diagonal (same-shard) never counts.
  EXPECT_EQ(serial.first, (std::vector<std::uint64_t>{0, 4, 4, 0}));
  // 2 initial events per shard + 6 fan-out deliveries per shard.
  EXPECT_EQ(serial.second, (std::vector<std::uint64_t>{8, 8}));
}

TEST(ShardedSimulator, ExceptionsPropagateAtTheSerialSeqPosition) {
  // An event that throws inside a sharded batch must surface after the
  // effects of every earlier-seq event committed and none of the later
  // ones, matching the unsharded batch contract.
  const auto run_with = [&](std::size_t shards, std::size_t lanes) {
    sim::Simulator sim;
    if (shards > 1) sim.set_shards(2, shard_map({0, 0, 1, 1}));
    sim.set_intra_threads(lanes);
    std::vector<int> commit_log;
    for (std::uint32_t n = 0; n < 4; ++n) {
      sim.schedule_tagged(0.001, n, [&, n] {
        if (sim::in_parallel_phase()) {
          sim::defer_commit_op([&, n] { commit_log.push_back(static_cast<int>(n)); });
        } else {
          commit_log.push_back(static_cast<int>(n));
        }
        if (n == 2) throw std::runtime_error("boom");
      });
    }
    std::string what;
    try {
      sim.run();
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    return std::make_pair(commit_log, what);
  };
  const auto reference = run_with(1, 1);
  EXPECT_EQ(reference.second, "boom");
  EXPECT_EQ(reference.first, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(run_with(2, 1), reference);
  EXPECT_EQ(run_with(2, 4), reference);
}

TEST(ShardedSimulator, RunUntilHonorsDeadlineAndDrainsBursts) {
  const auto run_with = [&](std::size_t shards, std::size_t lanes) {
    sim::Simulator sim;
    if (shards > 1) sim.set_shards(2, shard_map({0, 1}));
    sim.set_intra_threads(lanes);
    std::vector<int> log;
    sim.schedule_tagged(1.0, 0, [&] {
      log.push_back(1);
      // Same-instant follow-up exactly at the deadline must still run.
      sim.schedule_tagged(0, 1, [&] { log.push_back(2); });
    });
    sim.schedule_tagged(2.0, 1, [&] { log.push_back(3); });
    const std::size_t n = sim.run_until(1.0);
    EXPECT_EQ(n, 2u);
    EXPECT_DOUBLE_EQ(sim.now(), 1.0);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run();
    return log;
  };
  const std::vector<int> reference = run_with(1, 1);
  EXPECT_EQ(reference, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(run_with(2, 1), reference);
  EXPECT_EQ(run_with(2, 4), reference);
}

TEST(ShardedSimulator, SetShardsRequiresPristineSimulator) {
  sim::Simulator sim;
  sim.schedule(0.5, [] {});
  EXPECT_THROW(sim.set_shards(2, shard_map({0, 1})), std::logic_error);
  sim::Simulator sim2;
  EXPECT_THROW(sim2.set_shards(2, shard_map({0, 2})), std::invalid_argument);
}

// ------------------------------------------------ figure smoke analogues ---

void expect_flip_series_eq(const eval::FlipSeries& a, const eval::FlipSeries& b,
                           const std::string& context) {
  EXPECT_EQ(a.convergence_times, b.convergence_times) << context;
  EXPECT_EQ(a.message_counts, b.message_counts) << context;
  EXPECT_EQ(a.cold_start.messages_sent, b.cold_start.messages_sent) << context;
  EXPECT_EQ(a.cold_start.bytes_sent, b.cold_start.bytes_sent) << context;
  EXPECT_EQ(a.cold_start.messages_dropped, b.cold_start.messages_dropped)
      << context;
  EXPECT_DOUBLE_EQ(a.cold_start_time, b.cold_start_time) << context;
  EXPECT_EQ(a.events, b.events) << context;
  EXPECT_EQ(a.total_messages, b.total_messages) << context;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << context;
  EXPECT_EQ(a.analysis.checks_run, b.analysis.checks_run) << context;
  EXPECT_EQ(a.analysis.violations_seen, b.analysis.violations_seen) << context;
}

TEST(ShardIdentity, LinkFlipSeriesBitIdenticalAcrossShardAndLaneCounts) {
  // Fig 6/7 smoke analogue, all four protocols, analyzer in collect mode,
  // across the full {1,2,4,8} shards x {1,4} lanes matrix.
  util::Rng topo_rng(0x16A);
  const topo::AsGraph g = topo::brite_like(40, 2, 4, topo_rng);
  eval::RunOptions opts;
  opts.analysis = eval::AnalysisMode::kCollect;
  for (const eval::Protocol proto :
       {eval::Protocol::kCentaur, eval::Protocol::kBgp, eval::Protocol::kBgpRcn,
        eval::Protocol::kOspf}) {
    const auto run_with = [&](std::size_t shards, std::size_t lanes) {
      ScopedEnv scoped_shards("CENTAUR_SHARDS", shards);
      ScopedEnv scoped_lanes("CENTAUR_INTRA_THREADS", lanes);
      return eval::run_link_flips(g, proto, 4, util::Rng(99), opts);
    };
    const eval::FlipSeries reference = run_with(1, 1);
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      for (const std::size_t lanes : {1u, 4u}) {
        if (shards == 1 && lanes == 1) continue;
        expect_flip_series_eq(reference, run_with(shards, lanes),
                              std::string("protocol ") + eval::to_string(proto) +
                                  " shards=" + std::to_string(shards) +
                                  " lanes=" + std::to_string(lanes));
      }
    }
  }
}

TEST(ShardIdentity, ScalabilitySweepPathsBitIdenticalAcrossShardCounts) {
  // Fig 8 smoke analogue: beyond the series numbers this compares the full
  // routing outcome — every node's selected path to every destination — and
  // the deterministic per-shard tallies across lane counts.
  for (const std::size_t nodes : {20u, 45u}) {
    util::Rng topo_rng(0xF18 + nodes);
    const topo::AsGraph g = topo::brite_like(nodes, 2, 4, topo_rng);
    using PathMap = std::map<topo::NodeId, topo::Path>;
    struct Outcome {
      std::vector<PathMap> selected;
      std::size_t cold_messages = 0;
      std::uint64_t events = 0;
      std::vector<std::uint64_t> shard_events;
      std::vector<std::uint64_t> channel_counts;
      bool operator==(const Outcome&) const = default;
    };
    const auto run_with = [&](std::size_t shards, std::size_t lanes) {
      ScopedEnv scoped_shards("CENTAUR_SHARDS", shards);
      ScopedEnv scoped_lanes("CENTAUR_INTRA_THREADS", lanes);
      util::Rng rng(util::derive_seed(0xF18, nodes));
      eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);
      run.flip(0, false);
      run.flip(0, true);
      Outcome out;
      out.cold_messages = run.cold_start().messages_sent;
      out.events = run.network().events_executed();
      for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
        const auto* node =
            dynamic_cast<const core::CentaurNode*>(&run.network().node(v));
        if (node == nullptr) throw std::logic_error("expected CentaurNode");
        out.selected.emplace_back(node->selected_paths().begin(),
                                  node->selected_paths().end());
      }
      const sim::Simulator& sim = run.network().simulator();
      for (const auto& st : sim.shard_stats()) out.shard_events.push_back(st.events);
      for (std::size_t s = 0; s < sim.shards(); ++s) {
        for (std::size_t d = 0; d < sim.shards(); ++d) {
          out.channel_counts.push_back(sim.channel_messages(s, d));
        }
      }
      return out;
    };
    const Outcome reference = run_with(1, 1);
    for (const std::size_t shards : {2u, 4u, 8u}) {
      // Routing outcome matches the unsharded reference...
      const Outcome serial = run_with(shards, 1);
      EXPECT_EQ(serial.selected, reference.selected)
          << "nodes=" << nodes << " shards=" << shards;
      EXPECT_EQ(serial.cold_messages, reference.cold_messages)
          << "nodes=" << nodes << " shards=" << shards;
      EXPECT_EQ(serial.events, reference.events)
          << "nodes=" << nodes << " shards=" << shards;
      // ...and the full outcome, including per-shard event tallies and
      // channel counts, is lane-count invariant.
      const Outcome parallel = run_with(shards, 4);
      EXPECT_EQ(serial, parallel) << "nodes=" << nodes << " shards=" << shards;
    }
  }
}

// ------------------------------------------- builtin reliability campaign --

TEST(ShardIdentity, ReliabilityCampaignBitIdenticalAcrossShardCounts) {
  // SRLG bursts, crash/restart storms, flap storms, partition/heal — the
  // fault shapes where wide same-instant batches cross shard boundaries.
  faults::ScenarioSpec spec = faults::reliability_scenario(40, 0xCA3);
  spec.options.analysis = eval::AnalysisMode::kCollect;
  const auto run_with = [&](std::size_t shards, std::size_t lanes) {
    ScopedEnv scoped_shards("CENTAUR_SHARDS", shards);
    ScopedEnv scoped_lanes("CENTAUR_INTRA_THREADS", lanes);
    return faults::run_scenario(spec);
  };
  const faults::CampaignResult reference = run_with(1, 1);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    for (const std::size_t lanes : {1u, 4u}) {
      const faults::CampaignResult got = run_with(shards, lanes);
      const std::string ctx =
          "shards=" + std::to_string(shards) + " lanes=" + std::to_string(lanes);
      EXPECT_EQ(reference.cold_start, got.cold_start) << ctx;
      ASSERT_EQ(reference.phases.size(), got.phases.size()) << ctx;
      for (std::size_t i = 0; i < reference.phases.size(); ++i) {
        EXPECT_EQ(reference.phases[i], got.phases[i])
            << ctx << " phase " << reference.phases[i].name;
      }
      EXPECT_EQ(reference.total_events, got.total_events) << ctx;
      EXPECT_EQ(reference.total_messages, got.total_messages) << ctx;
      EXPECT_EQ(reference.total_bytes, got.total_bytes) << ctx;
      EXPECT_EQ(reference.analysis.checks_run, got.analysis.checks_run) << ctx;
      EXPECT_EQ(reference.analysis.violations_seen,
                got.analysis.violations_seen)
          << ctx;
      EXPECT_TRUE(got.clean()) << ctx;
    }
  }
}

}  // namespace
}  // namespace centaur
