#include <gtest/gtest.h>

#include <memory>

#include "bgp/bgp_node.hpp"
#include "test_helpers.hpp"
#include "topology/generator.hpp"

namespace centaur::bgp {
namespace {

using centaur::testing::TestNet;
using topo::AsGraph;
using topo::NodeId;
using topo::Relationship;

constexpr NodeId A = 0, B = 1, C = 2, D = 3;

TEST(BgpNode, TwoNodesExchangePrefixes) {
  AsGraph g(2);
  g.add_link(0, 1, Relationship::kPeer);
  TestNet<BgpNode> net(g);
  EXPECT_EQ(net.node(0).selected_path(1), (Path{0, 1}));
  EXPECT_EQ(net.node(1).selected_path(0), (Path{1, 0}));
}

TEST(BgpNode, SquareConvergesWithDeterministicTieBreak) {
  TestNet<BgpNode> net(centaur::testing::square_topology());
  EXPECT_EQ(net.node(A).selected_path(D), (Path{A, B, D}));
  EXPECT_EQ(net.node(D).selected_path(A), (Path{D, B, A}));
}

TEST(BgpNode, PeersDoNotTransit) {
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(1, 2, Relationship::kPeer);
  TestNet<BgpNode> net(g);
  EXPECT_FALSE(net.node(0).selected_path(2).has_value());
}

TEST(BgpNode, ProviderGivesTransit) {
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kProvider);  // 1 is 0's provider
  g.add_link(1, 2, Relationship::kCustomer);  // wait: 2 is 1's... see below
  // Link (1,2): rel_ab=kCustomer means 2 is 1's customer.
  TestNet<BgpNode> net(g);
  // 0 reaches 2 through its provider 1 (provider route down to customer 2).
  EXPECT_EQ(net.node(0).selected_path(2), (Path{0, 1, 2}));
  // 2 reaches 0 through its provider 1.
  EXPECT_EQ(net.node(2).selected_path(0), (Path{2, 1, 0}));
}

TEST(BgpNode, CustomerRoutePreferredOverShorterPeer) {
  AsGraph g(3);
  g.add_link(0, 2, Relationship::kPeer);
  g.add_link(1, 0, Relationship::kProvider);
  g.add_link(2, 1, Relationship::kProvider);
  TestNet<BgpNode> net(g);
  EXPECT_EQ(net.node(0).selected_path(2), (Path{0, 1, 2}));
}

TEST(BgpNode, WithdrawalPropagates) {
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kSibling);
  g.add_link(1, 2, Relationship::kSibling);
  TestNet<BgpNode> net(g);
  ASSERT_TRUE(net.node(0).selected_path(2).has_value());
  net.flip(*net.graph().find_link(1, 2), false);
  EXPECT_FALSE(net.node(0).selected_path(2).has_value());
  EXPECT_FALSE(net.node(1).selected_path(2).has_value());
}

TEST(BgpNode, SessionRestartRefillsRoutes) {
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kSibling);
  g.add_link(1, 2, Relationship::kSibling);
  TestNet<BgpNode> net(g);
  net.flip(*net.graph().find_link(1, 2), false);
  net.flip(*net.graph().find_link(1, 2), true);
  EXPECT_EQ(net.node(0).selected_path(2), (Path{0, 1, 2}));
  EXPECT_EQ(net.node(2).selected_path(0), (Path{2, 1, 0}));
}

TEST(BgpNode, FailoverToAlternatePath) {
  TestNet<BgpNode> net(centaur::testing::square_topology());
  net.flip(*net.graph().find_link(B, D), false);
  EXPECT_EQ(net.node(A).selected_path(D), (Path{A, C, D}));
  EXPECT_EQ(net.node(B).selected_path(D), (Path{B, A, C, D}));
}

TEST(BgpNode, PerDestinationWithdrawalsScaleWithDestCount) {
  // Chain of destinations behind one link: BGP must send one withdrawal
  // per lost destination, unlike Centaur's single link withdrawal.
  AsGraph g(6);
  g.add_link(1, 0, Relationship::kProvider);
  g.add_link(2, 0, Relationship::kProvider);
  g.add_link(3, 0, Relationship::kProvider);
  g.add_link(4, 0, Relationship::kProvider);
  g.add_link(5, 4, Relationship::kProvider);  // 5 behind 4
  TestNet<BgpNode> net(g);
  net.net().mark();
  net.net().set_link_state(*net.graph().find_link(4, 5), false);
  net.net().run_to_convergence();
  // Node 0 loses dest 5 and withdraws it toward 1,2,3 (and 4 is suppressed
  // by split horizon); node 4 withdraws toward 0.  At least 4 messages,
  // i.e. strictly more than Centaur's per-link accounting in the mirrored
  // test (CentaurNode.RootCauseWithdrawalIsOneLinkMessagePerNeighbor).
  EXPECT_GE(net.net().window().messages_sent, 4u);
  EXPECT_FALSE(net.node(1).selected_path(5).has_value());
}

TEST(BgpNode, MraiStillConverges) {
  TestNet<BgpNode> net(
      centaur::testing::square_topology(),
      [](NodeId, AsGraph& g) {
        BgpNode::Config cfg;
        cfg.mrai = 0.5;
        return std::make_unique<BgpNode>(g, cfg);
      });
  EXPECT_EQ(net.node(A).selected_path(D), (Path{A, B, D}));
  net.flip(*net.graph().find_link(B, D), false);
  EXPECT_EQ(net.node(A).selected_path(D), (Path{A, C, D}));
}

TEST(BgpNode, MraiBatchesUpdateBursts) {
  // Without MRAI, the cold start sends some number of messages; with a
  // large MRAI the duplicate-suppressed batches must not send more.
  const AsGraph g = centaur::testing::square_topology();
  TestNet<BgpNode> plain(g);
  TestNet<BgpNode> batched(g, [](NodeId, AsGraph& gr) {
    BgpNode::Config cfg;
    cfg.mrai = 1.0;
    return std::make_unique<BgpNode>(gr, cfg);
  });
  EXPECT_LE(batched.net().window().messages_sent,
            plain.net().window().messages_sent);
}

TEST(BgpNode, OriginationCanBeDisabled) {
  AsGraph g(2);
  g.add_link(0, 1, Relationship::kSibling);
  TestNet<BgpNode> net(g, [](NodeId v, AsGraph& gr) {
    BgpNode::Config cfg;
    cfg.originate_prefix = (v != 0);
    return std::make_unique<BgpNode>(gr, cfg);
  });
  EXPECT_FALSE(net.node(1).selected_path(0).has_value());
  EXPECT_TRUE(net.node(0).selected_path(1).has_value());
}

}  // namespace
}  // namespace centaur::bgp

namespace centaur::bgp {
namespace {

using centaur::testing::TestNet;

std::unique_ptr<BgpNode> make_rcn_node(NodeId, AsGraph& g) {
  BgpNode::Config cfg;
  cfg.root_cause_notification = true;
  return std::make_unique<BgpNode>(g, cfg);
}

TEST(BgpRcn, PathCrossesHelper) {
  EXPECT_TRUE(path_crosses({1, 2, 3}, AsLink::of(2, 1)));
  EXPECT_TRUE(path_crosses({1, 2, 3}, AsLink::of(2, 3)));
  EXPECT_FALSE(path_crosses({1, 2, 3}, AsLink::of(1, 3)));
  EXPECT_FALSE(path_crosses({1}, AsLink::of(1, 2)));
}

TEST(BgpRcn, ConvergesLikePlainBgp) {
  util::Rng rng(61);
  const AsGraph graph =
      topo::tiered_internet(topo::caida_like_params(35), rng);
  TestNet<BgpNode> plain(graph);
  TestNet<BgpNode> rcn(graph, make_rcn_node);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId d = 0; d < graph.num_nodes(); ++d) {
      EXPECT_EQ(plain.node(v).selected_path(d), rcn.node(v).selected_path(d))
          << v << "->" << d;
    }
  }
}

TEST(BgpRcn, ReconvergesThroughFlips) {
  util::Rng rng(62);
  const AsGraph graph =
      topo::tiered_internet(topo::caida_like_params(30), rng);
  TestNet<BgpNode> plain(graph);
  TestNet<BgpNode> rcn(graph, make_rcn_node);
  util::Rng flip_rng(9);
  const auto flips = flip_rng.sample_without_replacement(graph.num_links(), 5);
  for (const std::size_t raw : flips) {
    for (const bool up : {false, true}) {
      plain.flip(static_cast<topo::LinkId>(raw), up);
      rcn.flip(static_cast<topo::LinkId>(raw), up);
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        for (NodeId d = 0; d < graph.num_nodes(); ++d) {
          ASSERT_EQ(plain.node(v).selected_path(d),
                    rcn.node(v).selected_path(d))
              << v << "->" << d << " after flip " << raw << " up=" << up;
        }
      }
    }
  }
}

TEST(BgpRcn, SuppressesPathExplorationMessages) {
  // Aggregated over failures, root-cause pruning must not send more
  // messages than plain BGP's exploration.
  util::Rng rng(63);
  const AsGraph graph =
      topo::tiered_internet(topo::caida_like_params(60), rng);
  TestNet<BgpNode> plain(graph);
  TestNet<BgpNode> rcn(graph, make_rcn_node);
  util::Rng flip_rng(10);
  const auto flips =
      flip_rng.sample_without_replacement(graph.num_links(), 8);
  std::size_t plain_msgs = 0, rcn_msgs = 0;
  for (const std::size_t raw : flips) {
    plain_msgs += plain.flip(static_cast<topo::LinkId>(raw), false);
    rcn_msgs += rcn.flip(static_cast<topo::LinkId>(raw), false);
    plain.flip(static_cast<topo::LinkId>(raw), true);
    rcn.flip(static_cast<topo::LinkId>(raw), true);
  }
  EXPECT_LE(rcn_msgs, plain_msgs);
}

}  // namespace
}  // namespace centaur::bgp
