// Bit-identity proof for intra-trial parallelism (DESIGN.md §8).
//
// CENTAUR_INTRA_THREADS must be purely a wall-clock knob: for any thread
// count, every observable of a run — convergence times, message/byte/event
// counters, per-node selected paths, analyzer check counts — must equal the
// serial (1-thread) run bit for bit.  These tests re-run the tier-1 smoke
// analogues of the figure experiments (fig 6/7 link flips, fig 8 sweep
// sizes) and the builtin reliability campaign at 1 vs 4 threads and compare
// everything.  The CI TSan job runs this binary to also prove the parallel
// phase is race-free.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "centaur/centaur_node.hpp"
#include "util/env.hpp"
#include "eval/experiments.hpp"
#include "faults/campaign.hpp"
#include "faults/scenario.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace centaur {
namespace {

/// Sets CENTAUR_INTRA_THREADS for the duration of a scope (the Network
/// constructor samples it), restoring the previous value on exit.
class ScopedIntraThreads {
 public:
  explicit ScopedIntraThreads(std::size_t threads) {
    const std::optional<std::string> prev =
        util::env_string("CENTAUR_INTRA_THREADS");
    if (prev) saved_ = *prev;
    had_prev_ = prev.has_value();
    EXPECT_EQ(
        setenv("CENTAUR_INTRA_THREADS", std::to_string(threads).c_str(), 1),
        0);
  }
  ~ScopedIntraThreads() {
    if (had_prev_) {
      setenv("CENTAUR_INTRA_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("CENTAUR_INTRA_THREADS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string saved_;
};

void expect_flip_series_eq(const eval::FlipSeries& serial,
                           const eval::FlipSeries& parallel,
                           const std::string& context) {
  EXPECT_EQ(serial.convergence_times, parallel.convergence_times) << context;
  EXPECT_EQ(serial.message_counts, parallel.message_counts) << context;
  EXPECT_EQ(serial.cold_start.messages_sent, parallel.cold_start.messages_sent)
      << context;
  EXPECT_EQ(serial.cold_start.bytes_sent, parallel.cold_start.bytes_sent)
      << context;
  EXPECT_EQ(serial.cold_start.messages_dropped,
            parallel.cold_start.messages_dropped)
      << context;
  EXPECT_DOUBLE_EQ(serial.cold_start_time, parallel.cold_start_time)
      << context;
  EXPECT_EQ(serial.events, parallel.events) << context;
  EXPECT_EQ(serial.total_messages, parallel.total_messages) << context;
  EXPECT_EQ(serial.total_bytes, parallel.total_bytes) << context;
  EXPECT_EQ(serial.analysis.checks_run, parallel.analysis.checks_run)
      << context;
  EXPECT_EQ(serial.analysis.violations_seen, parallel.analysis.violations_seen)
      << context;
}

// ----------------------------------------------- fig 6/7 smoke analogue ---

TEST(IntraParallel, LinkFlipSeriesBitIdenticalAcrossThreadCounts) {
  // The fig 6 (convergence time) and fig 7 (load) experiments share
  // run_link_flips; one series per protocol covers both.  The analyzer runs
  // in collect mode so its per-event checks are part of the comparison.
  util::Rng topo_rng(0x16A);
  const topo::AsGraph g = topo::brite_like(40, 2, 4, topo_rng);
  eval::RunOptions opts;
  opts.analysis = eval::AnalysisMode::kCollect;
  for (const eval::Protocol proto :
       {eval::Protocol::kCentaur, eval::Protocol::kBgp,
        eval::Protocol::kBgpRcn, eval::Protocol::kOspf}) {
    const auto run_with = [&](std::size_t threads) {
      ScopedIntraThreads scoped(threads);
      return eval::run_link_flips(g, proto, 4, util::Rng(99), opts);
    };
    const eval::FlipSeries serial = run_with(1);
    const eval::FlipSeries parallel = run_with(4);
    expect_flip_series_eq(serial, parallel,
                          std::string("protocol ") + eval::to_string(proto));
  }
}

// ------------------------------------------------- fig 8 smoke analogue ---

TEST(IntraParallel, ScalabilitySweepPathsBitIdenticalAcrossThreadCounts) {
  // The fig 8 sweep varies topology size; beyond the series numbers this
  // compares the full routing outcome — every node's selected path to every
  // destination — at each size.
  for (const std::size_t nodes : {20u, 45u}) {
    util::Rng topo_rng(0xF18 + nodes);
    const topo::AsGraph g = topo::brite_like(nodes, 2, 4, topo_rng);
    using PathMap = std::map<topo::NodeId, topo::Path>;
    struct Outcome {
      std::vector<PathMap> selected;
      std::size_t cold_messages = 0;
      std::uint64_t events = 0;
    };
    const auto run_with = [&](std::size_t threads) {
      ScopedIntraThreads scoped(threads);
      util::Rng rng(util::derive_seed(0xF18, nodes));
      eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);
      // A down/up flip after cold start exercises the fault-burst batches.
      run.flip(0, false);
      run.flip(0, true);
      Outcome out;
      out.cold_messages = run.cold_start().messages_sent;
      out.events = run.network().events_executed();
      for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
        const auto* node =
            dynamic_cast<const core::CentaurNode*>(&run.network().node(v));
        if (node == nullptr) throw std::logic_error("expected CentaurNode");
        out.selected.emplace_back(node->selected_paths().begin(),
                                  node->selected_paths().end());
      }
      return out;
    };
    const Outcome serial = run_with(1);
    const Outcome parallel = run_with(4);
    EXPECT_EQ(serial.selected, parallel.selected) << "nodes=" << nodes;
    EXPECT_EQ(serial.cold_messages, parallel.cold_messages)
        << "nodes=" << nodes;
    EXPECT_EQ(serial.events, parallel.events) << "nodes=" << nodes;
  }
}

// ------------------------------------------- builtin reliability campaign --

TEST(IntraParallel, ReliabilityCampaignBitIdenticalAcrossThreadCounts) {
  // The canonical campaign covers the fault shapes where same-instant
  // parallelism actually fires: SRLG bursts, crash/restart notification
  // storms, flap storms, and partition/heal cuts.
  faults::ScenarioSpec spec = faults::reliability_scenario(40, 0xCA3);
  spec.options.analysis = eval::AnalysisMode::kCollect;
  const auto run_with = [&](std::size_t threads) {
    ScopedIntraThreads scoped(threads);
    return faults::run_scenario(spec);
  };
  const faults::CampaignResult serial = run_with(1);
  const faults::CampaignResult parallel = run_with(4);

  EXPECT_EQ(serial.cold_start, parallel.cold_start);
  ASSERT_EQ(serial.phases.size(), parallel.phases.size());
  for (std::size_t i = 0; i < serial.phases.size(); ++i) {
    EXPECT_EQ(serial.phases[i], parallel.phases[i])
        << "phase " << serial.phases[i].name;
  }
  EXPECT_EQ(serial.total_events, parallel.total_events);
  EXPECT_EQ(serial.total_messages, parallel.total_messages);
  EXPECT_EQ(serial.total_bytes, parallel.total_bytes);
  EXPECT_EQ(serial.analysis.checks_run, parallel.analysis.checks_run);
  EXPECT_EQ(serial.analysis.violations_seen, parallel.analysis.violations_seen);
  EXPECT_TRUE(parallel.clean());
}

TEST(IntraParallel, ManyThreadCountsAgreeOnOneSeries) {
  // Thread counts beyond the lane count of any batch (more threads than
  // nodes touched) must also be bit-identical — oversubscription changes
  // nothing observable.
  util::Rng topo_rng(0x7C);
  const topo::AsGraph g = topo::brite_like(24, 2, 4, topo_rng);
  const auto run_with = [&](std::size_t threads) {
    ScopedIntraThreads scoped(threads);
    return eval::run_link_flips(g, eval::Protocol::kCentaur, 2, util::Rng(5));
  };
  const eval::FlipSeries reference = run_with(1);
  for (const std::size_t threads : {2u, 3u, 8u, 32u}) {
    expect_flip_series_eq(reference, run_with(threads),
                          "threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace centaur
