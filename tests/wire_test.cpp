// Codec tests: varint units, randomized encode→decode roundtrip (both
// Permission-List encodings), exact-length accounting, malformed input.
//
// Roundtrip identity: with the explicit encoding, decode(encode(d)) == d
// for every canonical delta (sections sorted ascending — what diff_views
// and PendingDelta::take produce).  The Bloom encoding is lossy over
// destination ids by construction, so its roundtrip property is structural
// identity (links, next hops, destination counts) plus bit-identical
// filters with no false negatives — documented in DESIGN.md §6.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "centaur/permission_list.hpp"
#include "wire/wire_format.hpp"

namespace centaur::wire {
namespace {

using core::DirectedLink;
using core::GraphDelta;
using core::NodeId;
using core::PermissionList;

TEST(Varint, SizeAndRoundtrip) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16383,
                                  16384,
                                  0xFFFFFFFFULL,
                                  0x100000000ULL,
                                  0xFFFFFFFFFFFFFFFFULL};
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    EXPECT_EQ(buf.size(), varint_size(v)) << v;
    const std::uint8_t* pos = buf.data();
    EXPECT_EQ(get_varint(&pos, buf.data() + buf.size()), v);
    EXPECT_EQ(pos, buf.data() + buf.size());
  }
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(0xFFFFFFFFFFFFFFFFULL), 10u);
}

TEST(Varint, TruncatedAndOverflowingInputThrow) {
  const std::vector<std::uint8_t> truncated = {0x80, 0x80};
  const std::uint8_t* pos = truncated.data();
  EXPECT_THROW(get_varint(&pos, truncated.data() + truncated.size()),
               DecodeError);
  // 10 continuation bytes that overflow 64 bits.
  const std::vector<std::uint8_t> wide(10, 0xFF);
  pos = wide.data();
  EXPECT_THROW(get_varint(&pos, wide.data() + wide.size()), DecodeError);
}

// Canonical random delta: sorted unique link keys / node ids, random
// Permission Lists (including kNoNextHop entries and empty lists).
GraphDelta random_delta(std::mt19937& rng) {
  std::uniform_int_distribution<std::uint32_t> node(0, 499);
  auto random_link_keys = [&](std::size_t max_n) {
    std::set<std::uint64_t> keys;
    const std::size_t n = rng() % (max_n + 1);
    while (keys.size() < n) {
      keys.insert(core::pack_link(node(rng), node(rng)));
    }
    return keys;
  };
  auto random_nodes = [&](std::size_t max_n) {
    std::set<NodeId> ids;
    const std::size_t n = rng() % (max_n + 1);
    while (ids.size() < n) ids.insert(node(rng));
    return ids;
  };

  GraphDelta d;
  d.reset = rng() % 4 == 0;
  for (const std::uint64_t key : random_link_keys(6)) {
    PermissionList plist;
    const std::size_t entries = rng() % 4;  // 0 entries: single-homed head
    for (std::size_t e = 0; e < entries; ++e) {
      const NodeId next = rng() % 8 == 0 ? core::kNoNextHop : node(rng);
      const std::size_t dests = 1 + rng() % 5;
      for (std::size_t k = 0; k < dests; ++k) plist.add(node(rng), next);
    }
    d.upserts.emplace_back(core::unpack_link(key), std::move(plist));
  }
  for (const std::uint64_t key : random_link_keys(5)) {
    d.removes.push_back(core::unpack_link(key));
  }
  for (const NodeId id : random_nodes(5)) d.dest_adds.push_back(id);
  for (const NodeId id : random_nodes(5)) d.dest_removes.push_back(id);
  return d;
}

void expect_delta_eq(const GraphDelta& a, const GraphDelta& b) {
  EXPECT_EQ(a.reset, b.reset);
  ASSERT_EQ(a.upserts.size(), b.upserts.size());
  for (std::size_t i = 0; i < a.upserts.size(); ++i) {
    EXPECT_EQ(a.upserts[i].first, b.upserts[i].first);
    EXPECT_TRUE(a.upserts[i].second == b.upserts[i].second) << i;
  }
  EXPECT_EQ(a.removes, b.removes);
  EXPECT_EQ(a.dest_adds, b.dest_adds);
  EXPECT_EQ(a.dest_removes, b.dest_removes);
}

TEST(WireRoundtrip, ExplicitEncodingIsIdentity) {
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const GraphDelta d = random_delta(rng);
    const std::vector<std::uint8_t> buf = encode(d, PlistEncoding::kExplicit);
    EXPECT_EQ(buf.size(), d.byte_size(false)) << "trial " << trial;

    const Decoded out = decode(buf);
    EXPECT_EQ(out.encoding, PlistEncoding::kExplicit);
    EXPECT_EQ(out.bytes_consumed, buf.size());
    expect_delta_eq(out.delta, d);
    // Re-encoding the decoded delta is a fixed point.
    EXPECT_EQ(encode(out.delta, PlistEncoding::kExplicit), buf);
  }
}

TEST(WireRoundtrip, BloomEncodingIsStructuralIdentity) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const GraphDelta d = random_delta(rng);
    const std::vector<std::uint8_t> buf = encode(d, PlistEncoding::kBloom);
    EXPECT_EQ(buf.size(), d.byte_size(true)) << "trial " << trial;

    const Decoded out = decode(buf);
    EXPECT_EQ(out.encoding, PlistEncoding::kBloom);
    EXPECT_EQ(out.bytes_consumed, buf.size());
    // Non-plist sections are exact.
    EXPECT_EQ(out.delta.reset, d.reset);
    EXPECT_EQ(out.delta.removes, d.removes);
    EXPECT_EQ(out.delta.dest_adds, d.dest_adds);
    EXPECT_EQ(out.delta.dest_removes, d.dest_removes);
    ASSERT_EQ(out.delta.upserts.size(), d.upserts.size());
    ASSERT_EQ(out.bloom_plists.size(), d.upserts.size());
    for (std::size_t i = 0; i < d.upserts.size(); ++i) {
      EXPECT_EQ(out.delta.upserts[i].first, d.upserts[i].first);
      const auto entries = d.upserts[i].second.entries();
      ASSERT_EQ(out.bloom_plists[i].size(), entries.size());
      for (std::size_t j = 0; j < entries.size(); ++j) {
        const BloomEntry& got = out.bloom_plists[i][j];
        EXPECT_EQ(got.next_hop, entries[j].next_hop);
        EXPECT_EQ(got.dest_count, entries[j].dests.size());
        // Bit-identical to the sender-side compression, hence no false
        // negatives over the true destination set.
        const util::BloomFilter expect =
            PermissionList::compress_dests(entries[j].dests);
        EXPECT_EQ(got.filter.words(), expect.words());
        EXPECT_EQ(got.filter.hash_count(), expect.hash_count());
        for (const NodeId dest : entries[j].dests) {
          EXPECT_TRUE(got.filter.contains(dest));
        }
      }
    }
  }
}

TEST(WireRoundtrip, EncoderCanonicalizesUnsortedSections) {
  GraphDelta unsorted;
  unsorted.upserts.emplace_back(DirectedLink{5, 6}, PermissionList{});
  unsorted.upserts.emplace_back(DirectedLink{1, 2}, PermissionList{});
  unsorted.removes.push_back(DirectedLink{9, 9});
  unsorted.removes.push_back(DirectedLink{3, 4});
  unsorted.dest_adds = {7, 2};
  const Decoded out = decode(encode(unsorted, PlistEncoding::kExplicit));
  EXPECT_EQ(out.delta.upserts[0].first, (DirectedLink{1, 2}));
  EXPECT_EQ(out.delta.upserts[1].first, (DirectedLink{5, 6}));
  EXPECT_EQ(out.delta.removes[0], (DirectedLink{3, 4}));
  EXPECT_EQ(out.delta.dest_adds, (std::vector<NodeId>{2, 7}));
}

TEST(WireDecode, RejectsMalformedInput) {
  // Too short for a header.
  EXPECT_THROW(decode(nullptr, 0), DecodeError);
  const std::uint8_t one_byte[] = {kWireVersion};
  EXPECT_THROW(decode(one_byte, 1), DecodeError);

  const GraphDelta d;  // minimal valid message to corrupt
  std::vector<std::uint8_t> buf = encode(d, PlistEncoding::kExplicit);
  ASSERT_EQ(buf.size(), 6u);

  std::vector<std::uint8_t> bad = buf;
  bad[0] = 99;  // unknown version
  EXPECT_THROW(decode(bad), DecodeError);

  bad = buf;
  bad[1] = 0xF0;  // unknown flag bits
  EXPECT_THROW(decode(bad), DecodeError);

  bad = buf;
  bad[2] = 200;  // claims 200 upserts in a 6-byte message
  EXPECT_THROW(decode(bad), DecodeError);

  // Truncation anywhere in a real message must throw, never read past end.
  GraphDelta full;
  PermissionList plist;
  plist.add(1, 2);
  full.upserts.emplace_back(DirectedLink{1, 2}, plist);
  full.removes.push_back(DirectedLink{3, 4});
  full.dest_adds.push_back(5);
  for (const PlistEncoding enc :
       {PlistEncoding::kExplicit, PlistEncoding::kBloom}) {
    const std::vector<std::uint8_t> whole = encode(full, enc);
    for (std::size_t cut = 0; cut < whole.size(); ++cut) {
      EXPECT_THROW(decode(whole.data(), cut), DecodeError) << cut;
    }
    EXPECT_NO_THROW(decode(whole));
  }
}

TEST(WireBatch, RoundtripAndExactByteAccounting) {
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<GraphDelta> deltas;
    const std::size_t n = 1 + rng() % 5;
    for (std::size_t i = 0; i < n; ++i) deltas.push_back(random_delta(rng));
    std::vector<const GraphDelta*> ptrs;
    for (const GraphDelta& d : deltas) ptrs.push_back(&d);

    const std::vector<std::uint8_t> buf =
        encode_batch(ptrs, PlistEncoding::kExplicit);
    EXPECT_EQ(buf.size(), encoded_batch_size(ptrs, PlistEncoding::kExplicit));
    // Byte delta vs n separate datagrams: each member trades its two header
    // bytes for one flags byte; the batch adds its own header + count.
    std::size_t separate = 0;
    for (const GraphDelta& d : deltas) separate += d.byte_size(false);
    EXPECT_EQ(buf.size(), separate - n + 2 + varint_size(n));

    const std::vector<Decoded> out = decode_batch(buf);
    ASSERT_EQ(out.size(), n);
    std::size_t accounted = 2 + varint_size(n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i].encoding, PlistEncoding::kExplicit);
      expect_delta_eq(out[i].delta, deltas[i]);
      // Per-member consumption: the member's flags byte + body.
      EXPECT_EQ(out[i].bytes_consumed, deltas[i].byte_size(false) - 1);
      accounted += out[i].bytes_consumed;
    }
    EXPECT_EQ(accounted, buf.size());
  }
}

TEST(WireBatch, BloomFlagAndResetFlagsSurvive) {
  GraphDelta plain, reset;
  PermissionList plist;
  plist.add(1, 2);
  plain.upserts.emplace_back(DirectedLink{1, 2}, plist);
  reset.reset = true;
  const std::vector<std::uint8_t> buf =
      encode_batch({&plain, &reset}, PlistEncoding::kBloom);
  const std::vector<Decoded> out = decode_batch(buf);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].encoding, PlistEncoding::kBloom);
  EXPECT_FALSE(out[0].delta.reset);
  ASSERT_EQ(out[0].bloom_plists.size(), 1u);
  EXPECT_TRUE(out[1].delta.reset);
}

TEST(WireBatch, FramingsRejectEachOther) {
  const GraphDelta d;
  const std::vector<std::uint8_t> single = encode(d, PlistEncoding::kExplicit);
  EXPECT_THROW(decode_batch(single), DecodeError);
  const std::vector<std::uint8_t> batch =
      encode_batch({&d}, PlistEncoding::kExplicit);
  ASSERT_EQ(batch[0], kBatchVersion);
  EXPECT_THROW(decode(batch), DecodeError);
}

TEST(WireBatch, RejectsMalformedInput) {
  GraphDelta a, b;
  PermissionList plist;
  plist.add(3, 4);
  a.upserts.emplace_back(DirectedLink{1, 2}, plist);
  b.reset = true;
  b.dest_adds.push_back(7);
  const std::vector<std::uint8_t> buf =
      encode_batch({&a, &b}, PlistEncoding::kExplicit);

  // Truncation anywhere must throw, never read past the end.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_THROW(decode_batch(buf.data(), cut), DecodeError) << cut;
  }
  EXPECT_NO_THROW(decode_batch(buf));

  std::vector<std::uint8_t> bad = buf;
  bad.push_back(0);  // trailing byte after the last delta
  EXPECT_THROW(decode_batch(bad), DecodeError);

  bad = buf;
  bad[1] = 0xF0;  // unknown batch flag bits
  EXPECT_THROW(decode_batch(bad), DecodeError);

  bad = buf;
  bad[2] = 200;  // claims 200 deltas the buffer cannot hold
  EXPECT_THROW(decode_batch(bad), DecodeError);

  bad = buf;
  bad[3] = 0xF0;  // unknown per-delta flag bits (reset is the only one)
  EXPECT_THROW(decode_batch(bad), DecodeError);

  // An empty batch is well-formed, if pointless.
  const std::vector<std::uint8_t> empty = encode_batch({}, PlistEncoding::kExplicit);
  EXPECT_EQ(decode_batch(empty).size(), 0u);
}

}  // namespace
}  // namespace centaur::wire
