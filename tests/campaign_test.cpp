// Fault-injection campaign engine and ScenarioSpec API (src/faults):
// scenario JSON parsing, script validation, engine fault semantics
// (SRLG / crash / restart / partition / flap), ProtocolRun reuse, and the
// serial-vs-parallel bit-identity of campaign results.
#include <gtest/gtest.h>

#include <iterator>
#include <stdexcept>
#include <utility>
#include <vector>

#include "faults/campaign.hpp"
#include "faults/fault_script.hpp"
#include "faults/scenario.hpp"
#include "runner/parallel.hpp"
#include "topology/generator.hpp"

namespace centaur {
namespace {

using topo::AsGraph;
using topo::LinkId;
using topo::NodeId;

AsGraph smoke_graph(std::size_t nodes = 40, std::uint64_t seed = 7) {
  util::Rng rng(seed);
  return topo::brite_like(nodes, 2, std::max<std::size_t>(4, nodes / 40),
                          rng);
}

// ------------------------------------------------- scenario JSON ---------

TEST(ScenarioJson, ParsesFullSpec) {
  const auto spec = faults::parse_scenario_json(R"({
    "name": "smoke",
    "topology": {"style": "brite", "nodes": 60, "seed": 9},
    "protocol": "bgp-rcn",
    "seed": 4,
    "mrai": 2.5,
    "check": "assert",
    "srlgs": [[0, 1, 2], [5]],
    "partitions": [[0, 1, 2, 3]],
    "phases": [
      {"name": "burst", "actions": [{"do": "srlg_down", "group": 0}]},
      {"name": "storm", "actions": [
        {"do": "flap_storm", "link": 3, "cycles": 3, "period": 0.002,
         "at": 0.01}]}
    ]
  })");
  EXPECT_EQ(spec.name, "smoke");
  EXPECT_EQ(spec.topology.style, "brite");
  EXPECT_EQ(spec.topology.nodes, 60u);
  EXPECT_EQ(spec.topology.seed, 9u);
  EXPECT_EQ(spec.protocol, eval::Protocol::kBgpRcn);
  EXPECT_EQ(spec.seed, 4u);
  EXPECT_DOUBLE_EQ(spec.options.bgp_mrai, 2.5);
  EXPECT_EQ(spec.options.analysis, eval::AnalysisMode::kAssert);
  ASSERT_EQ(spec.script.srlgs.size(), 2u);
  EXPECT_EQ(spec.script.srlgs[0], (std::vector<LinkId>{0, 1, 2}));
  ASSERT_EQ(spec.script.partitions.size(), 1u);
  ASSERT_EQ(spec.script.phases.size(), 2u);
  EXPECT_EQ(spec.script.phases[0].name, "burst");
  const faults::FaultAction& storm = spec.script.phases[1].actions[0];
  EXPECT_EQ(storm.kind, faults::ActionKind::kFlapStorm);
  EXPECT_EQ(storm.link, 3u);
  EXPECT_EQ(storm.cycles, 3u);
  EXPECT_DOUBLE_EQ(storm.period, 0.002);
  EXPECT_DOUBLE_EQ(storm.at, 0.01);
}

TEST(ScenarioJson, DefaultsAreCentaurCheckOff) {
  const auto spec = faults::parse_scenario_json(
      R"({"phases": [{"name": "p", "actions": [{"do": "link_down"}]}]})");
  EXPECT_EQ(spec.protocol, eval::Protocol::kCentaur);
  EXPECT_EQ(spec.options.analysis, eval::AnalysisMode::kOff);
  EXPECT_DOUBLE_EQ(spec.options.bgp_mrai, 0.0);
}

TEST(ScenarioJson, RejectsMalformedInput) {
  // Typos fail loudly instead of silently no-opping.
  EXPECT_THROW(faults::parse_scenario_json(
                   R"({"phasez": [], "phases": [
                       {"name": "p", "actions": [{"do": "link_down"}]}]})"),
               std::runtime_error);
  EXPECT_THROW(faults::parse_scenario_json(R"({"phases": []})"),
               std::runtime_error);  // phases must be non-empty
  EXPECT_THROW(faults::parse_scenario_json(R"({"phases": [{"name": "p",
                   "actions": [{"do": "frobnicate"}]}]})"),
               std::runtime_error);  // unknown action kind
  EXPECT_THROW(faults::parse_scenario_json(R"({"check": "sometimes",
                   "phases": [{"name": "p",
                   "actions": [{"do": "link_down"}]}]})"),
               std::runtime_error);  // bad check mode
  EXPECT_THROW(faults::parse_scenario_json(R"({"protocol": "rip",
                   "phases": [{"name": "p",
                   "actions": [{"do": "link_down"}]}]})"),
               std::runtime_error);  // unknown protocol
  EXPECT_THROW(faults::parse_scenario_json("{\"name\": \"x\" \"y\": 1}"),
               std::runtime_error);  // not JSON
  EXPECT_THROW(faults::parse_scenario_json(
                   R"({"name": "a", "name": "b", "phases": [
                       {"name": "p", "actions": [{"do": "link_down"}]}]})"),
               std::runtime_error);  // duplicate key
  EXPECT_THROW(faults::parse_scenario_json(R"({"phases": [{"name": "p",
                   "actions": [{"do": "link_down", "lnik": 3}]}]})"),
               std::runtime_error);  // unknown action key
  EXPECT_THROW(faults::parse_scenario_json(R"({"phases": [{"name": "p",
                   "actions": [{"do": "link_down", "at": -0.5}]}]})"),
               std::runtime_error);  // negative offset
  EXPECT_THROW(faults::parse_scenario_json(R"({"phases": [{"name": "p",
                   "actions": [{"do": "intercept", "node": 1}]}]})"),
               std::runtime_error);  // interception without a victim
  EXPECT_THROW(faults::parse_scenario_json(R"({"phases": [{"name": "p",
                   "actions": [{"do": "rel_change", "link": 0,
                                "rel": "sibling"}]}]})"),
               std::runtime_error);  // rel must be customer|provider|peer
}

TEST(ScenarioJson, ParsesAdversarialActions) {
  const auto spec = faults::parse_scenario_json(R"({
    "phases": [
      {"name": "leak", "actions": [{"do": "route_leak", "node": 3}]},
      {"name": "grab", "actions": [
        {"do": "intercept", "node": 3, "target": 9, "at": 0.5}]},
      {"name": "churn", "actions": [
        {"do": "local_pref_flip", "node": 4},
        {"do": "rel_change", "link": 2, "rel": "peer"}]},
      {"name": "mend", "actions": [
        {"do": "intercept_stop", "node": 3, "target": 9},
        {"do": "route_leak_stop", "node": 3},
        {"do": "local_pref_restore", "node": 4},
        {"do": "rel_change", "link": 2, "rel": "customer"}]}
    ]
  })");
  ASSERT_EQ(spec.script.phases.size(), 4u);
  EXPECT_EQ(spec.script.phases[0].actions[0].kind,
            faults::ActionKind::kRouteLeak);
  EXPECT_EQ(spec.script.phases[0].actions[0].node, 3u);
  const faults::FaultAction& grab = spec.script.phases[1].actions[0];
  EXPECT_EQ(grab.kind, faults::ActionKind::kIntercept);
  EXPECT_EQ(grab.target, 9u);
  EXPECT_DOUBLE_EQ(grab.at, 0.5);
  EXPECT_EQ(spec.script.phases[2].actions[1].kind,
            faults::ActionKind::kRelChange);
  EXPECT_EQ(spec.script.phases[2].actions[1].rel,
            topo::Relationship::kPeer);
  EXPECT_EQ(spec.script.phases[3].actions[3].rel,
            topo::Relationship::kCustomer);
}

// ------------------------------------------------- script validation -----

TEST(FaultScriptValidate, CatchesPairingAndRangeErrors) {
  const AsGraph g = smoke_graph(20);
  using FA = faults::FaultAction;

  auto script_with = [](std::vector<faults::FaultPhase> phases) {
    faults::FaultScript s;
    s.phases = std::move(phases);
    return s;
  };

  // Restart without a crash.
  EXPECT_THROW(
      script_with({{"p", {FA::node_restart(1)}}}).validate(g),
      std::invalid_argument);
  // Double crash.
  EXPECT_THROW(
      script_with({{"p", {FA::node_crash(1), FA::node_crash(1)}}}).validate(g),
      std::invalid_argument);
  // Link action touching a crashed node.
  const LinkId incident = g.neighbors(1).front().link;
  EXPECT_THROW(script_with({{"p", {FA::node_crash(1)}},
                            {"q", {FA::link_down(incident)}}})
                   .validate(g),
               std::invalid_argument);
  // Heal without a partition.
  faults::FaultScript heal = script_with({{"p", {FA::heal(0)}}});
  heal.partitions.push_back({0, 1});
  EXPECT_THROW(heal.validate(g), std::invalid_argument);
  // Partition started twice.
  faults::FaultScript twice =
      script_with({{"p", {FA::partition(0), FA::partition(0)}}});
  twice.partitions.push_back({0, 1});
  EXPECT_THROW(twice.validate(g), std::invalid_argument);
  // Partition side must be a strict subset.
  faults::FaultScript whole = script_with({{"p", {FA::partition(0)}}});
  whole.partitions.emplace_back();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    whole.partitions[0].push_back(v);
  }
  EXPECT_THROW(whole.validate(g), std::invalid_argument);
  // Out-of-range link; empty SRLG; zero-cycle storm; negative offset.
  EXPECT_THROW(script_with({{"p", {FA::link_down(
                                static_cast<LinkId>(g.num_links()))}}})
                   .validate(g),
               std::invalid_argument);
  faults::FaultScript empty_srlg = script_with({{"p", {FA::srlg_down(0)}}});
  empty_srlg.srlgs.emplace_back();
  EXPECT_THROW(empty_srlg.validate(g), std::invalid_argument);
  EXPECT_THROW(script_with({{"p", {FA::flap_storm(0, 0, 0.001)}}}).validate(g),
               std::invalid_argument);
  EXPECT_THROW(script_with({{"p", {FA::link_down(0, -1.0)}}}).validate(g),
               std::invalid_argument);
  // A well-paired script passes.
  faults::FaultScript ok = script_with(
      {{"p", {FA::node_crash(1)}}, {"q", {FA::node_restart(1)}}});
  EXPECT_NO_THROW(ok.validate(g));
}

TEST(FaultScriptValidate, CatchesLinkPairingErrors) {
  const AsGraph g = smoke_graph(20);
  using FA = faults::FaultAction;
  auto script_with = [](std::vector<faults::FaultPhase> phases) {
    faults::FaultScript s;
    s.phases = std::move(phases);
    return s;
  };

  // Double-down of the same link; up of a link that is not down; a flap
  // storm starting on a downed link.
  EXPECT_THROW(
      script_with({{"p", {FA::link_down(0), FA::link_down(0)}}}).validate(g),
      std::invalid_argument);
  EXPECT_THROW(script_with({{"p", {FA::link_up(0)}}}).validate(g),
               std::invalid_argument);
  EXPECT_THROW(script_with({{"p", {FA::link_down(0)}},
                            {"q", {FA::flap_storm(0, 2, 0.001)}}})
                   .validate(g),
               std::invalid_argument);
  // Overlapping SRLGs double-down their shared link.
  faults::FaultScript overlap = script_with(
      {{"p", {FA::srlg_down(0), FA::srlg_down(1)}}});
  overlap.srlgs.push_back({0, 1});
  overlap.srlgs.push_back({1, 2});
  EXPECT_THROW(overlap.validate(g), std::invalid_argument);
  // Paired down/up (and disjoint SRLGs) pass.
  faults::FaultScript ok = script_with(
      {{"p", {FA::link_down(0)}}, {"q", {FA::link_up(0), FA::link_down(0)}},
       {"r", {FA::link_up(0)}}});
  EXPECT_NO_THROW(ok.validate(g));
}

TEST(FaultScriptValidate, CatchesAdversarialPairingErrors) {
  const AsGraph g = smoke_graph(20);
  using FA = faults::FaultAction;
  auto script_with = [](std::vector<faults::FaultPhase> phases) {
    faults::FaultScript s;
    s.phases = std::move(phases);
    return s;
  };

  // Stop without a start; double start; self-interception; a stop naming
  // the wrong victim.
  EXPECT_THROW(script_with({{"p", {FA::route_leak_stop(1)}}}).validate(g),
               std::invalid_argument);
  EXPECT_THROW(
      script_with({{"p", {FA::route_leak(1), FA::route_leak(1)}}}).validate(g),
      std::invalid_argument);
  EXPECT_THROW(script_with({{"p", {FA::intercept(1, 1)}}}).validate(g),
               std::invalid_argument);
  EXPECT_THROW(script_with({{"p", {FA::intercept(1, 2)}},
                            {"q", {FA::intercept_stop(1, 3)}}})
                   .validate(g),
               std::invalid_argument);
  EXPECT_THROW(
      script_with({{"p", {FA::local_pref_restore(1)}}}).validate(g),
      std::invalid_argument);
  // Out-of-range victim; sibling rewires unsupported.
  EXPECT_THROW(
      script_with({{"p", {FA::intercept(
                       1, static_cast<NodeId>(g.num_nodes()))}}})
          .validate(g),
      std::invalid_argument);
  EXPECT_THROW(
      script_with({{"p", {FA::rel_change(
                       0, topo::Relationship::kSibling)}}})
          .validate(g),
      std::invalid_argument);
  // A crash while adversarial state is active would silently drop it on
  // restart; a crashed node cannot start misbehaving either.
  EXPECT_THROW(script_with({{"p", {FA::route_leak(1)}},
                            {"q", {FA::node_crash(1)}}})
                   .validate(g),
               std::invalid_argument);
  EXPECT_THROW(script_with({{"p", {FA::node_crash(1)}},
                            {"q", {FA::local_pref_flip(1)}}})
                   .validate(g),
               std::invalid_argument);
  // Well-paired adversarial scripts pass.
  faults::FaultScript ok = script_with(
      {{"p", {FA::route_leak(1), FA::intercept(2, 7)}},
       {"q", {FA::route_leak_stop(1), FA::intercept_stop(2, 7)}},
       {"r", {FA::node_crash(1)}}, {"s", {FA::node_restart(1)}}});
  EXPECT_NO_THROW(ok.validate(g));
}

// ------------------------------------------------- engine semantics ------

TEST(CampaignEngine, SrlgDownTakesWholeGroupAndUpRestoresIt) {
  const AsGraph g = smoke_graph(30);
  util::Rng rng(3);
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);

  faults::FaultScript script;
  script.srlgs.push_back({0, 1, 2});
  script.phases.push_back({"burst", {faults::FaultAction::srlg_down(0)}});
  script.phases.push_back({"mend", {faults::FaultAction::srlg_up(0)}});

  faults::CampaignEngine engine(run);
  engine.run_phase(script, script.phases[0]);
  for (const LinkId l : {0u, 1u, 2u}) EXPECT_FALSE(run.graph().link_up(l));
  engine.run_phase(script, script.phases[1]);
  for (const LinkId l : {0u, 1u, 2u}) EXPECT_TRUE(run.graph().link_up(l));

  const auto result = engine.result();
  ASSERT_EQ(result.phases.size(), 2u);
  EXPECT_EQ(result.phases[0].name, "burst");
  EXPECT_GT(result.phases[0].messages, 0u);
  EXPECT_GT(result.phases[0].events, 0u);
  EXPECT_TRUE(result.clean());
}

TEST(CampaignEngine, CrashDownsIncidentLinksAndRestartRestoresOnlyThose) {
  const AsGraph g = smoke_graph(30);
  // Pick a multi-homed node and pre-down one of its links so the restart
  // must NOT resurrect it (only crash-downed links are restored).
  NodeId v = 0;
  while (g.degree(v) < 3) ++v;
  const LinkId already_down = g.neighbors(v).front().link;

  util::Rng rng(5);
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);
  run.flip(already_down, false);

  faults::FaultScript script;
  script.phases.push_back({"crash", {faults::FaultAction::node_crash(v)}});
  script.phases.push_back(
      {"restart", {faults::FaultAction::node_restart(v)}});

  faults::CampaignEngine engine(run);
  engine.run_phase(script, script.phases[0]);
  for (const topo::Neighbor& nb : run.graph().neighbors(v)) {
    EXPECT_FALSE(run.graph().link_up(nb.link));
  }
  engine.run_phase(script, script.phases[1]);
  for (const topo::Neighbor& nb : run.graph().neighbors(v)) {
    EXPECT_EQ(run.graph().link_up(nb.link), nb.link != already_down);
  }
  EXPECT_TRUE(engine.result().clean());
}

TEST(CampaignEngine, HealDefersLinksOfCrashedEndpointToItsRestart) {
  const AsGraph g = smoke_graph(30);
  NodeId v = 0;
  while (g.degree(v) < 2) ++v;

  util::Rng rng(9);
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);

  // Partition isolates v, then v crashes (its links are already down, so
  // the crash records nothing), then the heal fires while v is dead: the
  // cut links must stay down until v's restart raises them.
  faults::FaultScript script;
  script.partitions.push_back({v});
  script.phases.push_back({"cut", {faults::FaultAction::partition(0)}});
  script.phases.push_back({"crash", {faults::FaultAction::node_crash(v)}});
  script.phases.push_back({"stitch", {faults::FaultAction::heal(0)}});
  script.phases.push_back(
      {"restart", {faults::FaultAction::node_restart(v)}});
  script.validate(run.graph());

  faults::CampaignEngine engine(run);
  engine.run_phase(script, script.phases[0]);
  engine.run_phase(script, script.phases[1]);
  engine.run_phase(script, script.phases[2]);
  for (const topo::Neighbor& nb : run.graph().neighbors(v)) {
    EXPECT_FALSE(run.graph().link_up(nb.link))
        << "heal must not raise a dead node's link " << nb.link;
  }
  engine.run_phase(script, script.phases[3]);
  for (const topo::Neighbor& nb : run.graph().neighbors(v)) {
    EXPECT_TRUE(run.graph().link_up(nb.link));
  }
  EXPECT_TRUE(engine.result().clean());
}

TEST(CampaignEngine, LinkOfTwoCrashedEndpointsComesUpAfterLastRestart) {
  // Both endpoints of a link crash; the link may only come back up after
  // the *last* endpoint restarts.  The first restart re-enters the raise
  // and must hand the link on to the still-dead survivor.
  const AsGraph g = smoke_graph(30);
  // Any link whose endpoints are both multi-homed keeps the rest of the
  // graph connected while the pair is dead.
  LinkId shared = 0;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    if (g.degree(g.link(l).a) >= 2 && g.degree(g.link(l).b) >= 2) {
      shared = l;
      break;
    }
  }
  const NodeId a = g.link(shared).a;
  const NodeId b = g.link(shared).b;

  util::Rng rng(17);
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);
  faults::FaultScript script;
  script.phases.push_back({"crash_a", {faults::FaultAction::node_crash(a)}});
  script.phases.push_back({"crash_b", {faults::FaultAction::node_crash(b)}});
  script.phases.push_back(
      {"restart_a", {faults::FaultAction::node_restart(a)}});
  script.phases.push_back(
      {"restart_b", {faults::FaultAction::node_restart(b)}});
  script.validate(run.graph());

  faults::CampaignEngine engine(run);
  engine.run_phase(script, script.phases[0]);
  engine.run_phase(script, script.phases[1]);
  engine.run_phase(script, script.phases[2]);
  EXPECT_FALSE(run.graph().link_up(shared))
      << "restart of one endpoint must not raise a link whose far end is "
         "still dead";
  for (const topo::Neighbor& nb : run.graph().neighbors(a)) {
    EXPECT_EQ(run.graph().link_up(nb.link), nb.link != shared);
  }
  engine.run_phase(script, script.phases[3]);
  EXPECT_TRUE(run.graph().link_up(shared));
  for (const topo::Neighbor& nb : run.graph().neighbors(b)) {
    EXPECT_TRUE(run.graph().link_up(nb.link));
  }
  EXPECT_TRUE(engine.result().clean());
}

TEST(CampaignEngine, RestartDefersCutLinksToTheActiveHeal) {
  // A crash pre-empts the partition's claim on the node's links (the cut
  // only records links it took down itself).  The restart must not
  // resurrect sessions across the still-active cut: they belong to the
  // heal.
  const AsGraph g = smoke_graph(30);
  NodeId v = 0;
  while (g.degree(v) < 2) ++v;

  util::Rng rng(21);
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);
  faults::FaultScript script;
  script.partitions.push_back({v});
  script.phases.push_back({"crash", {faults::FaultAction::node_crash(v)}});
  script.phases.push_back({"cut", {faults::FaultAction::partition(0)}});
  script.phases.push_back(
      {"restart", {faults::FaultAction::node_restart(v)}});
  script.phases.push_back({"stitch", {faults::FaultAction::heal(0)}});
  script.validate(run.graph());

  faults::CampaignEngine engine(run);
  engine.run_phase(script, script.phases[0]);
  engine.run_phase(script, script.phases[1]);
  engine.run_phase(script, script.phases[2]);
  for (const topo::Neighbor& nb : run.graph().neighbors(v)) {
    EXPECT_FALSE(run.graph().link_up(nb.link))
        << "restart must not resurrect link " << nb.link
        << " across the active cut";
  }
  engine.run_phase(script, script.phases[3]);
  for (const topo::Neighbor& nb : run.graph().neighbors(v)) {
    EXPECT_TRUE(run.graph().link_up(nb.link));
  }
  EXPECT_TRUE(engine.result().clean());
}

TEST(CampaignEngine, FlapStormConvergesWithAndWithoutMrai) {
  const AsGraph g = smoke_graph(30);
  for (const double mrai : {0.0, 0.05}) {
    util::Rng rng(13);
    eval::RunOptions options;
    options.bgp_mrai = mrai;
    eval::ProtocolRun run(g, eval::Protocol::kBgp, rng, options);

    faults::FaultScript script;
    script.phases.push_back(
        {"storm", {faults::FaultAction::flap_storm(0, 3, 0.002)}});
    faults::CampaignEngine engine(run);
    const faults::CampaignResult result = engine.run(script);
    ASSERT_EQ(result.phases.size(), 1u);
    EXPECT_GT(result.phases[0].events, 0u) << "mrai=" << mrai;
    EXPECT_TRUE(run.graph().link_up(0)) << "storm must end link-up";
  }
}

TEST(CampaignEngine, RejectsScriptsThatFailValidation) {
  const AsGraph g = smoke_graph(20);
  util::Rng rng(1);
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, rng);
  faults::FaultScript bad;
  bad.phases.push_back({"p", {faults::FaultAction::node_restart(0)}});
  faults::CampaignEngine engine(run);
  EXPECT_THROW(engine.run(bad), std::invalid_argument);
}

// ------------------------------------------------- harness ---------------

TEST(ProtocolRunReset, MatchesFreshConstruction) {
  const AsGraph g = smoke_graph(30);
  util::Rng a(42);
  eval::ProtocolRun reused(g, eval::Protocol::kCentaur, a);
  // Perturb the run, then reset: the re-run cold start must be identical to
  // a freshly constructed run fed the same seed stream.
  reused.flip(0, false);
  reused.flip(0, true);
  util::Rng reset_rng(42);
  reused.reset(reset_rng);

  util::Rng b(42);
  const eval::ProtocolRun fresh(g, eval::Protocol::kCentaur, b);
  EXPECT_EQ(reused.cold_start().messages_sent,
            fresh.cold_start().messages_sent);
  EXPECT_EQ(reused.cold_start().bytes_sent, fresh.cold_start().bytes_sent);
  EXPECT_DOUBLE_EQ(reused.cold_start_time(), fresh.cold_start_time());
}

TEST(Campaign, ReliabilityScenarioBitIdenticalAcrossThreads) {
  // The canonical campaign (SRLG burst, crash/restart, flap storm,
  // partition/heal) over all four protocols: the parallel fan-out must be
  // bit-identical to the serial run, with zero analyzer violations.
  faults::ScenarioSpec spec = faults::reliability_scenario(40, 1);
  spec.options.analysis = eval::AnalysisMode::kAssert;
  const AsGraph g = spec.topology.build();

  auto run_all = [&](std::size_t threads) {
    constexpr std::size_t kArms = std::size(eval::kAllProtocols);
    return runner::run_trials(kArms, threads, [&](std::size_t i) {
      faults::ScenarioSpec arm = spec;
      arm.protocol = eval::kAllProtocols[i];
      const faults::CampaignResult r = faults::run_scenario(g, arm);
      EXPECT_TRUE(r.clean()) << eval::to_string(arm.protocol);
      EXPECT_EQ(r.phases.size(), spec.script.phases.size());
      return r.phases;
    });
  };
  const auto serial = run_all(1);
  const auto parallel = run_all(4);
  EXPECT_EQ(serial, parallel);
  // Distinct protocols must actually have produced distinct measurements.
  EXPECT_NE(serial[0], serial[2]);
}

TEST(Campaign, RunScenarioBuildsTopologyFromSpec) {
  faults::ScenarioSpec spec = faults::reliability_scenario(30, 5);
  spec.protocol = eval::Protocol::kOspf;
  const faults::CampaignResult r = faults::run_scenario(spec);
  EXPECT_EQ(r.scenario, "reliability");
  EXPECT_EQ(r.protocol, eval::Protocol::kOspf);
  EXPECT_EQ(r.phases.size(), spec.script.phases.size());
  EXPECT_GT(r.cold_start.messages, 0u);
  EXPECT_GT(r.total_events, r.cold_start.events);
}

}  // namespace
}  // namespace centaur
