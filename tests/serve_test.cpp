// Serving-plane tests (DESIGN.md §14): snapshot correctness, RCU swap
// linearizability (the tsan CI job runs this binary), k-path enumeration
// properties, the unified self-destination contract across every query
// entry point, and cross-thread-count bit-identity of query answers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "centaur/centaur_node.hpp"
#include "centaur/query.hpp"
#include "eval/experiments.hpp"
#include "eval/static_eval.hpp"
#include "serve/engine.hpp"
#include "serve/query_bench.hpp"
#include "serve/query_file.hpp"
#include "serve/snapshot.hpp"
#include "topology/generator.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace centaur {
namespace {

using core::kNoNextHop;
using core::PGraph;
using serve::PGraphSnapshot;
using serve::QueryEngine;
using topo::NodeId;
using topo::Path;

/// Sets one environment variable for the duration of a scope, restoring the
/// prior value (ServeOptions samples the environment on each call).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const std::optional<std::string> prev = util::env_string(name_);
    if (prev) saved_ = *prev;
    had_prev_ = prev.has_value();
    EXPECT_EQ(setenv(name_, value.c_str(), 1), 0);
  }
  ~ScopedEnv() {
    if (had_prev_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_prev_ = false;
  std::string saved_;
};

/// The paper's Figure 4 shape as a hand-built local P-graph: root 0 reaches
/// destination 3 through 1 or through 2; both links into the multi-homed
/// head 3 carry an explicit permission for 3.
PGraph diamond() {
  PGraph g(0);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(1, 3);
  g.add_link(2, 3);
  g.link_data(1, 3).plist.add(3, kNoNextHop);
  g.link_data(2, 3).plist.add(3, kNoNextHop);
  g.mark_destination(3);
  return g;
}

/// Diamond with a third branch 0->4->3 (three interior-disjoint paths).
PGraph triple_diamond() {
  PGraph g = diamond();
  g.add_link(0, 4);
  g.add_link(4, 3);
  g.link_data(4, 3).plist.add(3, kNoNextHop);
  return g;
}

/// Diamond whose only permitted branch for destination 3 goes through
/// `via` (the other branch's entry does not permit 3).
PGraph diamond_via(NodeId via) {
  PGraph g(0);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(1, 3);
  g.add_link(2, 3);
  // Both links listed, exactly one permitting 3 — no unlisted fallback.
  g.link_data(1, 3).plist.add(via == 1 ? NodeId{3} : NodeId{99}, kNoNextHop);
  g.link_data(2, 3).plist.add(via == 2 ? NodeId{3} : NodeId{99}, kNoNextHop);
  g.mark_destination(3);
  return g;
}

std::shared_ptr<const PGraphSnapshot> full_snapshot(
    serve::SnapshotBuilder& builder, const PGraph& g) {
  return builder.publish(g, {}, {});
}

/// Policy-compliance predicate for an enumerated path root..dest: every hop
/// must be a real in-link, and at multi-homed heads the hop must be either
/// explicitly permitted for (dest, next-hop-of-head) or the unique unlisted
/// default (paper Table 1 / Figure 4(c)).
template <typename View>
bool policy_compliant(const View& g, const Path& path, NodeId dest) {
  if (path.empty() || path.front() != g.root() || path.back() != dest) {
    return false;
  }
  for (std::size_t j = 1; j < path.size(); ++j) {
    const NodeId from = path[j - 1];
    const NodeId to = path[j];
    const PGraph::AdjList& ps = g.parents(to);
    if (std::find(ps.begin(), ps.end(), from) == ps.end()) return false;
    if (ps.size() <= 1) continue;
    const NodeId came_from = (j + 1 < path.size()) ? path[j + 1] : kNoNextHop;
    const core::PermissionList* pl = g.plist(from, to);
    if (pl != nullptr && !pl->empty()) {
      if (!pl->permits(dest, came_from)) return false;
      continue;
    }
    // Fallback hop: `from` must be the *unique* unlisted in-link of `to`.
    std::size_t unlisted = 0;
    for (const NodeId p : ps) {
      const core::PermissionList* q = g.plist(p, to);
      if (q == nullptr || q->empty()) ++unlisted;
    }
    if (unlisted != 1) return false;
  }
  return true;
}

// --------------------------------------------------------------- snapshots --

TEST(Snapshot, FullMatchesLiveGraph) {
  const PGraph g = diamond();
  serve::SnapshotBuilder builder(eval::SnapshotPolicy::kFull);
  const auto snap = full_snapshot(builder, g);

  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->root(), 0u);
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_TRUE(snap->full());
  EXPECT_TRUE(snap->is_destination(3));
  EXPECT_FALSE(snap->is_destination(1));

  for (NodeId n = 0; n <= 3; ++n) {
    const PGraph::AdjList& live = g.parents(n);
    const PGraph::AdjList& frozen = snap->parents(n);
    ASSERT_EQ(live.size(), frozen.size()) << n;
    EXPECT_TRUE(std::equal(live.begin(), live.end(), frozen.begin())) << n;
  }
  EXPECT_NE(snap->plist(1, 3), nullptr);
  EXPECT_TRUE(snap->plist(1, 3)->permits(3, kNoNextHop));
  EXPECT_EQ(snap->plist(0, 3), nullptr);

  Path from_snap, from_live;
  EXPECT_EQ(core::query_path_over(*snap, core::PathQuery{3}, from_snap),
            core::PathStatus::kFound);
  EXPECT_EQ(core::query_path_over(core::PGraphView{&g}, core::PathQuery{3},
                                  from_live),
            core::PathStatus::kFound);
  EXPECT_EQ(from_snap, from_live);
}

TEST(Snapshot, DeltaOverlayTracksChangesAndShadowsEmptyNodes) {
  PGraph g = diamond();
  serve::SnapshotBuilder builder(eval::SnapshotPolicy::kDelta);
  const auto v1 = builder.publish(g, {}, {});
  ASSERT_TRUE(v1->full());

  // Retract 1->3: only node 3's in-links are dirty.
  g.remove_link(1, 3);
  const auto v2 = builder.publish(g, {3}, {{1, 3}});
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_FALSE(v2->full());
  EXPECT_EQ(v2->depth(), 2u);
  ASSERT_EQ(v2->parents(3).size(), 1u);
  EXPECT_EQ(v2->parents(3).front(), 2u);
  // The predecessor is untouched (immutability / structural sharing).
  EXPECT_EQ(v1->parents(3).size(), 2u);

  Path p;
  ASSERT_EQ(core::query_path_over(*v2, core::PathQuery{3}, p),
            core::PathStatus::kFound);
  EXPECT_EQ(p, (Path{0, 2, 3}));

  // Retract the last in-link: the overlay must *shadow* node 3 as link-less,
  // not fall through to the stale full level.
  g.remove_link(2, 3);
  g.unmark_destination(3);
  const auto v3 = builder.publish(g, {3}, {{2, 3}});
  EXPECT_TRUE(v3->parents(3).empty());
  EXPECT_FALSE(v3->is_destination(3));
  EXPECT_EQ(core::query_path_over(*v3, core::PathQuery{3}, p),
            core::PathStatus::kUnreachable);
  // Untouched nodes still resolve through the chain.
  EXPECT_EQ(v3->parents(1).size(), 1u);
}

TEST(Snapshot, DeltaChainCollapsesGeometrically) {
  PGraph g = diamond();
  serve::SnapshotBuilder builder(eval::SnapshotPolicy::kDelta);
  std::shared_ptr<const PGraphSnapshot> snap = builder.publish(g, {}, {});
  // 64 no-op deltas over the same dirty node: the chain must flatten
  // periodically instead of growing without bound.
  std::size_t max_depth = 0;
  for (int i = 0; i < 64; ++i) {
    snap = builder.publish(g, {3}, {{1, 3}});
    max_depth = std::max(max_depth, snap->depth());
  }
  EXPECT_LE(max_depth, 20u);
  EXPECT_GE(builder.full_builds(), 2u);  // initial + at least one collapse
  EXPECT_LT(builder.full_builds(), 64u);

  Path p;
  ASSERT_EQ(core::query_path_over(*snap, core::PathQuery{3}, p),
            core::PathStatus::kFound);
  EXPECT_EQ(p, (Path{0, 1, 3}));
}

TEST(Snapshot, DeltaAndFullPoliciesAnswerIdentically) {
  PGraph g = diamond();
  serve::SnapshotBuilder delta(eval::SnapshotPolicy::kDelta);
  serve::SnapshotBuilder full(eval::SnapshotPolicy::kFull);

  const auto step = [&](const std::vector<NodeId>& dests,
                        const std::vector<core::DirectedLink>& links) {
    const auto d = delta.publish(g, dests, links);
    const auto f = full.publish(g, dests, links);
    EXPECT_EQ(d->version(), f->version());
    for (NodeId dest = 0; dest <= 4; ++dest) {
      Path pd, pf;
      const auto sd = core::query_path_over(*d, core::PathQuery{dest}, pd);
      const auto sf = core::query_path_over(*f, core::PathQuery{dest}, pf);
      EXPECT_EQ(sd, sf) << dest;
      EXPECT_EQ(pd, pf) << dest;
      EXPECT_EQ(d->is_destination(dest), f->is_destination(dest)) << dest;
    }
  };

  step({}, {});
  g.remove_link(1, 3);
  step({3}, {{1, 3}});
  g.add_link(1, 3);
  g.link_data(1, 3).plist.add(3, kNoNextHop);
  step({3}, {{1, 3}});
  g.mark_destination(2);
  step({2}, {});

  // The ablation observable: full pays a complete build per publish.
  EXPECT_EQ(full.full_builds(), 4u);
  EXPECT_LT(delta.full_builds(), full.full_builds());
}

// --------------------------------------------------------------------- RCU --

TEST(Rcu, PinnedReaderBlocksReclamationUnpinnedDrains) {
  serve::ReaderRegistry reg(4);
  serve::SnapshotCell cell;
  serve::SnapshotBuilder builder(eval::SnapshotPolicy::kFull);
  const PGraph g = diamond();

  cell.publish(full_snapshot(builder, g), reg);
  EXPECT_EQ(cell.retired_count(), 0u);

  {
    serve::ReadPin pin(reg);
    const PGraphSnapshot* held = cell.current();
    ASSERT_NE(held, nullptr);
    EXPECT_EQ(held->version(), 1u);

    cell.publish(full_snapshot(builder, g), reg);
    cell.publish(full_snapshot(builder, g), reg);
    // Both predecessors were retired while we were pinned: neither may be
    // freed (ASan would flag the reads below if they were).
    EXPECT_EQ(cell.retired_count(), 2u);
    EXPECT_EQ(held->version(), 1u);
    EXPECT_EQ(held->parents(3).size(), 2u);
    EXPECT_EQ(cell.current()->version(), 3u);
  }

  // Reader quiescent: the next publish reclaims the whole retire list.
  cell.publish(full_snapshot(builder, g), reg);
  EXPECT_EQ(cell.retired_count(), 0u);
  EXPECT_EQ(reg.min_pinned(), UINT64_MAX);
}

TEST(Rcu, ReadersNeverObserveTornState) {
  // Writer alternates between two complete snapshots whose derived paths
  // differ; concurrent readers must always see exactly one of the two
  // answers — never a mix, never a freed snapshot (tsan/asan back this up).
  const PGraph ga = diamond_via(1);
  const PGraph gb = diamond_via(2);
  const Path path_a{0, 1, 3};
  const Path path_b{0, 2, 3};

  constexpr std::size_t kReaders = 3;
  serve::ReaderRegistry reg(kReaders + 1);
  serve::SnapshotCell cell;
  serve::SnapshotBuilder builder(eval::SnapshotPolicy::kFull);
  cell.publish(full_snapshot(builder, ga), reg);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> reads{0};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Path p;
      while (!done.load(std::memory_order_relaxed)) {
        serve::ReadPin pin(reg);
        const PGraphSnapshot* snap = cell.current();
        if (snap == nullptr) continue;
        if (core::query_path_over(*snap, core::PathQuery{3}, p) !=
                core::PathStatus::kFound ||
            (p != path_a && p != path_b) || !snap->is_destination(3)) {
          torn.store(true);
          return;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Keep publishing until every reader has raced at least a few answers
  // (a fixed publish count can finish before the readers are scheduled).
  for (int i = 0; i < 800 || reads.load(std::memory_order_relaxed) <
                                 kReaders * 8;
       ++i) {
    if (torn.load()) break;
    cell.publish(full_snapshot(builder, (i % 2 == 0) ? gb : ga), reg);
  }
  done.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(torn.load());
  EXPECT_GT(reads.load(), 0u);
  // With every reader quiescent one more publish drains the retire list.
  cell.publish(full_snapshot(builder, ga), reg);
  EXPECT_EQ(cell.retired_count(), 0u);
}

// ----------------------------------------------------------------- k paths --

TEST(KPaths, CanonicalFirstSortedDistinctAndCompliant) {
  const PGraph g = triple_diamond();
  const core::PGraphView view{&g};

  const core::KPathResult kp = core::query_k_paths(view, 3, 8);
  ASSERT_EQ(kp.paths.size(), 3u);
  EXPECT_FALSE(kp.truncated);

  // paths[0] is exactly DerivePath.
  const auto canonical = g.derive_path(3);
  ASSERT_TRUE(canonical.has_value());
  EXPECT_EQ(kp.paths[0], *canonical);

  for (const Path& p : kp.paths) {
    EXPECT_TRUE(policy_compliant(view, p, 3)) << ::testing::PrintToString(p);
  }
  // Alternates sorted by (length, lex), no duplicates anywhere.
  for (std::size_t i = 2; i < kp.paths.size(); ++i) {
    const Path& a = kp.paths[i - 1];
    const Path& b = kp.paths[i];
    EXPECT_TRUE(a.size() < b.size() || (a.size() == b.size() && a < b));
  }
  for (std::size_t i = 0; i < kp.paths.size(); ++i) {
    for (std::size_t j = i + 1; j < kp.paths.size(); ++j) {
      EXPECT_NE(kp.paths[i], kp.paths[j]);
    }
  }

  // k truncates the alternates, keeps the canonical head.
  const core::KPathResult k1 = core::query_k_paths(view, 3, 1);
  ASSERT_EQ(k1.paths.size(), 1u);
  EXPECT_EQ(k1.paths[0], *canonical);

  EXPECT_EQ(core::disjoint_path_count(view, 3), 3u);
}

TEST(KPaths, ExpansionBudgetSetsTruncated) {
  const PGraph g = triple_diamond();
  const core::PGraphView view{&g};
  const core::KPathResult kp =
      core::query_k_paths(view, 3, 8, /*max_expansions=*/2);
  EXPECT_TRUE(kp.truncated);
  EXPECT_LE(kp.paths.size(), 1u);
}

TEST(KPaths, UnreachableAndSinglePathShapes) {
  PGraph g = diamond_via(1);
  const core::PGraphView view{&g};
  // Exactly one permitted branch -> exactly one path; the impermissible
  // branch must not appear as an alternate.
  const core::KPathResult kp = core::query_k_paths(view, 3, 8);
  ASSERT_EQ(kp.paths.size(), 1u);
  EXPECT_EQ(kp.paths[0], (Path{0, 1, 3}));
  EXPECT_EQ(core::disjoint_path_count(view, 3), 1u);

  // Destination with no in-links: unreachable, count 0.
  g.mark_destination(9);
  EXPECT_TRUE(core::query_k_paths(view, 9, 4).paths.empty());
  EXPECT_EQ(core::disjoint_path_count(view, 9), 0u);
}

TEST(KPaths, MatchesDerivePathOnConvergedNodeGraphs) {
  // On every converged per-vantage P-graph, k=1 enumeration and the
  // canonical head of k=4 must agree with the deprecated derive_path
  // wrapper for every destination.
  util::Rng rng(21);
  const topo::AsGraph g = topo::brite_like(18, 2, 4, rng);
  for (NodeId vantage = 0; vantage < g.num_nodes(); vantage += 5) {
    const PGraph pg = eval::build_node_pgraph(g, vantage);
    const core::PGraphView view{&pg};
    for (NodeId dest = 0; dest < g.num_nodes(); ++dest) {
      const auto legacy = pg.derive_path(dest);
      const core::KPathResult kp = core::query_k_paths(view, dest, 4);
      if (legacy.has_value()) {
        ASSERT_FALSE(kp.paths.empty()) << vantage << "->" << dest;
        EXPECT_EQ(kp.paths[0], *legacy) << vantage << "->" << dest;
        for (const Path& p : kp.paths) {
          EXPECT_TRUE(policy_compliant(view, p, dest))
              << vantage << "->" << dest;
        }
      } else {
        EXPECT_TRUE(kp.paths.empty()) << vantage << "->" << dest;
      }
    }
  }
}

// ------------------------------------------------- self-destination contract --

TEST(SelfDestination, UnifiedAcrossEveryEntryPoint) {
  const PGraph g = diamond();

  // Deprecated wrappers (the historic divergence this contract fixes).
  const auto legacy = g.derive_path(0);
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(*legacy, Path{0});
  Path out{7, 7, 7};  // dirty buffer: must be replaced, not appended
  std::vector<NodeId> visited;
  EXPECT_TRUE(g.derive_path_into(0, out, &visited));
  EXPECT_EQ(out, Path{0});
  EXPECT_EQ(visited, std::vector<NodeId>{0});

  // Consolidated API.
  const core::PathResult r = core::query_path(g, core::PathQuery{0});
  EXPECT_TRUE(r.found());
  EXPECT_EQ(r.path, Path{0});

  // Snapshot view + k paths.
  serve::SnapshotBuilder builder(eval::SnapshotPolicy::kFull);
  const auto snap = full_snapshot(builder, g);
  Path p;
  EXPECT_EQ(core::query_path_over(*snap, core::PathQuery{0}, p),
            core::PathStatus::kFound);
  EXPECT_EQ(p, Path{0});
  const core::KPathResult kp = core::query_k_paths(*snap, 0, 4);
  ASSERT_EQ(kp.paths.size(), 1u);
  EXPECT_EQ(kp.paths[0], Path{0});
  EXPECT_EQ(core::disjoint_path_count(*snap, 0), 1u);

  // Engine: src == dst answers {src} even though src is no marked
  // destination.
  eval::ServeOptions opts;
  QueryEngine engine(4, opts);
  engine.publish(0, g, {3}, {{1, 3}, {2, 3}});
  const QueryEngine::QueryResult qr = engine.query(0, 0);
  EXPECT_EQ(qr.status, QueryEngine::QueryStatus::kOk);
  ASSERT_EQ(qr.paths.size(), 1u);
  EXPECT_EQ(qr.paths[0], Path{0});
  EXPECT_EQ(qr.disjoint, 1u);
}

// -------------------------------------------------------------- QueryEngine --

TEST(QueryEngine, StatusesCoverTheContract) {
  eval::ServeOptions opts;
  QueryEngine engine(4, opts);

  // Before the first publish: no snapshot, including out-of-range ids.
  EXPECT_EQ(engine.query(0, 3).status, QueryEngine::QueryStatus::kNoSnapshot);
  EXPECT_EQ(engine.query(99, 3).status,
            QueryEngine::QueryStatus::kNoSnapshot);

  PGraph g = diamond();
  g.mark_destination(9);  // marked but link-less -> unreachable
  engine.publish(0, g, {3, 9}, {{1, 3}, {2, 3}});

  const QueryEngine::QueryResult ok = engine.query(0, 3);
  EXPECT_EQ(ok.status, QueryEngine::QueryStatus::kOk);
  ASSERT_EQ(ok.paths.size(), 2u);
  EXPECT_EQ(ok.paths[0], *g.derive_path(3));
  EXPECT_EQ(ok.paths[1], (Path{0, 2, 3}));
  EXPECT_EQ(ok.disjoint, 2u);
  EXPECT_EQ(ok.version, 1u);
  EXPECT_FALSE(ok.truncated);

  EXPECT_EQ(engine.query(0, 2).status,
            QueryEngine::QueryStatus::kNotDestination);
  EXPECT_EQ(engine.query(0, 9).status,
            QueryEngine::QueryStatus::kUnreachable);
  // Other nodes have not published.
  EXPECT_EQ(engine.query(1, 3).status,
            QueryEngine::QueryStatus::kNoSnapshot);

  // k=1 narrows the answer; the engine default (query_k) applies at k=0.
  EXPECT_EQ(engine.query(0, 3, 1).paths.size(), 1u);
  EXPECT_EQ(engine.query(0, 3).paths.size(), 2u);

  const QueryEngine::PublishStats stats = engine.publish_stats();
  EXPECT_EQ(stats.publishes, 1u);
  EXPECT_EQ(stats.cells_live, 1u);
}

TEST(QueryEngine, EvaluateQueriesBitIdenticalAcrossThreadCounts) {
  util::Rng rng(5);
  const topo::AsGraph g = topo::brite_like(16, 2, 4, rng);
  eval::ServeOptions opts;
  opts.snapshot_policy = eval::SnapshotPolicy::kFull;
  QueryEngine engine(g.num_nodes(), opts);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    engine.publish(v, eval::build_node_pgraph(g, v), {}, {});
  }

  const std::vector<serve::QuerySpec> specs =
      serve::canonical_queries(g.num_nodes(), 0xBEEF, 48);
  serve::EvalTotals t1, t4;
  const std::vector<std::string> serial =
      serve::evaluate_queries(engine, specs, 1, &t1);
  const std::vector<std::string> threaded =
      serve::evaluate_queries(engine, specs, 4, &t4);
  ASSERT_EQ(serial.size(), specs.size());
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(t1.found, t4.found);
  EXPECT_EQ(t1.total_hops, t4.total_hops);
  EXPECT_EQ(t1.found + t1.unreachable + t1.not_destination + t1.no_snapshot,
            specs.size());
  EXPECT_GT(t1.found, 0u);
}

TEST(QueryEngine, ServesProtocolStateThroughTheSink) {
  // End-to-end: a Centaur run publishes through the sink; after convergence
  // every engine answer must match the owning node's live P-graph.
  util::Rng rng(11);
  const topo::AsGraph g = topo::brite_like(20, 2, 4, rng);
  eval::ServeOptions opts;
  QueryEngine engine(g.num_nodes(), opts);
  eval::RunOptions run_opts;
  run_opts.centaur_snapshot_sink = engine.make_sink();
  util::Rng run_rng(12);
  eval::ProtocolRun run(g, eval::Protocol::kCentaur, run_rng, run_opts);
  run.flip(0, false);
  run.flip(0, true);

  const QueryEngine::PublishStats stats = engine.publish_stats();
  EXPECT_EQ(stats.cells_live, g.num_nodes());
  EXPECT_GT(stats.publishes, g.num_nodes());

  for (NodeId src = 0; src < g.num_nodes(); src += 3) {
    const auto* node =
        dynamic_cast<const core::CentaurNode*>(&run.network().node(src));
    ASSERT_NE(node, nullptr);
    const PGraph& live = node->local_pgraph();
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
      const QueryEngine::QueryResult qr = engine.query(src, dst, 1);
      if (dst == src) {
        EXPECT_EQ(qr.status, QueryEngine::QueryStatus::kOk);
        ASSERT_EQ(qr.paths.size(), 1u);
        EXPECT_EQ(qr.paths[0], Path{src});
        continue;
      }
      if (!live.is_destination(dst)) {
        EXPECT_EQ(qr.status, QueryEngine::QueryStatus::kNotDestination)
            << src << "->" << dst;
        continue;
      }
      const auto derived = live.derive_path(dst);
      if (derived.has_value()) {
        EXPECT_EQ(qr.status, QueryEngine::QueryStatus::kOk)
            << src << "->" << dst;
        ASSERT_EQ(qr.paths.size(), 1u) << src << "->" << dst;
        EXPECT_EQ(qr.paths[0], *derived) << src << "->" << dst;
      } else {
        EXPECT_EQ(qr.status, QueryEngine::QueryStatus::kUnreachable)
            << src << "->" << dst;
      }
    }
  }
}

// ------------------------------------------------------------- ServeOptions --

TEST(ServeOptions, EnvParsingIsStrict) {
  util::reset_warn_once_for_testing();
  {
    ScopedEnv k("CENTAUR_QUERY_K", "7");
    ScopedEnv t("CENTAUR_SERVE_THREADS", "2");
    ScopedEnv p("CENTAUR_SNAPSHOT_POLICY", "full");
    const eval::ServeOptions opts = eval::serve_options_from_env();
    EXPECT_EQ(opts.query_k, 7u);
    EXPECT_EQ(opts.query_threads, 2u);
    EXPECT_EQ(opts.snapshot_policy, eval::SnapshotPolicy::kFull);
  }
  {
    // Garbage falls back to the defaults (and warns once, not asserted
    // here); enum matching is exact, so "FULL" is garbage.
    ScopedEnv k("CENTAUR_QUERY_K", "4x");
    ScopedEnv t("CENTAUR_SERVE_THREADS", "0");
    ScopedEnv p("CENTAUR_SNAPSHOT_POLICY", "FULL");
    const eval::ServeOptions opts = eval::serve_options_from_env();
    EXPECT_EQ(opts.query_k, 4u);
    EXPECT_EQ(opts.query_threads, 1u);  // numeric but < 1 clamps to 1
    EXPECT_EQ(opts.snapshot_policy, eval::SnapshotPolicy::kDelta);
  }
  util::reset_warn_once_for_testing();
}

// --------------------------------------------------------------- query file --

TEST(QueryFile, ParsesTheDocumentedFormat) {
  const std::vector<serve::QuerySpec> specs = serve::parse_queries_json(
      R"({"queries": [{"src": 0, "dst": 5}, {"src": 3, "dst": 5, "k": 8}]})");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].src, 0u);
  EXPECT_EQ(specs[0].dst, 5u);
  EXPECT_EQ(specs[0].k, 0u);  // absent -> engine default
  EXPECT_EQ(specs[1].src, 3u);
  EXPECT_EQ(specs[1].k, 8u);
}

TEST(QueryFile, RejectsMalformedDocuments) {
  EXPECT_THROW(serve::parse_queries_json("[]"), std::runtime_error);
  EXPECT_THROW(serve::parse_queries_json(R"({"queries": 3})"),
               std::runtime_error);
  EXPECT_THROW(  // unknown top-level key
      serve::parse_queries_json(R"({"queries": [], "extra": 1})"),
      std::runtime_error);
  EXPECT_THROW(  // unknown entry key
      serve::parse_queries_json(
          R"({"queries": [{"src": 0, "dst": 1, "hops": 2}]})"),
      std::runtime_error);
  EXPECT_THROW(  // missing src
      serve::parse_queries_json(R"({"queries": [{"dst": 1}]})"),
      std::runtime_error);
  EXPECT_THROW(  // non-integer id
      serve::parse_queries_json(R"({"queries": [{"src": 1.5, "dst": 1}]})"),
      std::runtime_error);
  EXPECT_THROW(  // negative id
      serve::parse_queries_json(R"({"queries": [{"src": -1, "dst": 1}]})"),
      std::runtime_error);
}

// -------------------------------------------------------------- querybench --

TEST(QueryBench, TwoPhaseRunIsDeterministicWhereGated) {
  serve::QueryBenchConfig config;
  config.nodes = 24;
  config.seed = 99;
  config.live_iters = 8;
  config.flip_sample = 2;
  config.query_sample = 24;
  config.serve.query_threads = 4;

  const serve::QueryBenchResult a = serve::run_query_bench(config);
  const serve::QueryBenchResult b = serve::run_query_bench(config);

  // The live trial's protocol totals and the whole steady trial are the
  // gated-at-0 surface; they must be bit-stable run to run.
  EXPECT_EQ(a.live.events, b.live.events);
  EXPECT_EQ(a.live.messages, b.live.messages);
  EXPECT_EQ(a.live.bytes, b.live.bytes);
  ASSERT_EQ(a.steady.metrics.size(), b.steady.metrics.size());
  for (std::size_t i = 0; i < a.steady.metrics.size(); ++i) {
    EXPECT_EQ(a.steady.metrics[i].first, b.steady.metrics[i].first);
    EXPECT_DOUBLE_EQ(a.steady.metrics[i].second, b.steady.metrics[i].second)
        << a.steady.metrics[i].first;
  }
}

}  // namespace
}  // namespace centaur
