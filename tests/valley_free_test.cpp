#include <gtest/gtest.h>

#include <tuple>

#include "policy/valley_free.hpp"
#include "topology/algorithms.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace centaur::policy {
namespace {

using topo::AsGraph;
using topo::NodeId;
using topo::Path;
using topo::Relationship;

/// Fixture: two tier-1 peers (0, 1); 2 is 0's customer; 3 is customer of
/// both 0 and 1; 4 is 2's customer; 5 is 3's customer.
///
///        0 ===peer=== 1
///       / \          /
///      2   3 -------+        (3 multi-homed to 0 and 1)
///      |   |
///      4   5
AsGraph two_tier_fixture() {
  AsGraph g(6);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(2, 0, Relationship::kProvider);  // 0 provides for 2
  g.add_link(3, 0, Relationship::kProvider);
  g.add_link(3, 1, Relationship::kProvider);
  g.add_link(4, 2, Relationship::kProvider);
  g.add_link(5, 3, Relationship::kProvider);
  return g;
}

TEST(Solver, DestinationEntry) {
  const AsGraph g = two_tier_fixture();
  const auto routes = ValleyFreeRoutes::compute(g, 4);
  EXPECT_EQ(routes.at(4).source, RouteSource::kSelf);
  EXPECT_EQ(routes.at(4).length, 0u);
  EXPECT_EQ(routes.path_from(4), (Path{4}));
}

TEST(Solver, CustomerRoutesDescend) {
  const AsGraph g = two_tier_fixture();
  const auto routes = ValleyFreeRoutes::compute(g, 4);
  // 2 and 0 reach 4 through their customer chain.
  EXPECT_EQ(routes.at(2).source, RouteSource::kCustomer);
  EXPECT_EQ(routes.path_from(2), (Path{2, 4}));
  EXPECT_EQ(routes.at(0).source, RouteSource::kCustomer);
  EXPECT_EQ(routes.path_from(0), (Path{0, 2, 4}));
}

TEST(Solver, PeerRouteSinglePeerHop) {
  const AsGraph g = two_tier_fixture();
  const auto routes = ValleyFreeRoutes::compute(g, 4);
  // 1 reaches 4 via its peer 0 (one peer hop onto a customer route).
  EXPECT_EQ(routes.at(1).source, RouteSource::kPeer);
  EXPECT_EQ(routes.path_from(1), (Path{1, 0, 2, 4}));
}

TEST(Solver, ProviderRoutesPickShortestSelected) {
  const AsGraph g = two_tier_fixture();
  const auto routes = ValleyFreeRoutes::compute(g, 4);
  // 3 hears 4 from both providers: via 0 (selected len 2) and via 1
  // (selected len 3).  It must pick 0.
  EXPECT_EQ(routes.at(3).source, RouteSource::kProvider);
  EXPECT_EQ(routes.path_from(3), (Path{3, 0, 2, 4}));
  // 5 stacks another provider hop.
  EXPECT_EQ(routes.path_from(5), (Path{5, 3, 0, 2, 4}));
}

TEST(Solver, ValleyPathsExcluded) {
  // 4 and 5 are both stubs; the only physical path between them goes
  // through providers (up then down) — fine.  But peers of providers must
  // not transit: make a pure valley topology.
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kCustomer);  // 1 is 0's customer
  g.add_link(1, 2, Relationship::kProvider);  // 2 is 1's provider
  // Path 0 -> 1 -> 2 is down-then-up: a valley.  1 must not give 0 a route
  // to 2.
  const auto routes = ValleyFreeRoutes::compute(g, 2);
  EXPECT_TRUE(routes.at(1).reachable());
  EXPECT_FALSE(routes.at(0).reachable());
}

TEST(Solver, PeerDoesNotTransitToPeer) {
  // 0 -peer- 1 -peer- 2: no route 0 -> 2.
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(1, 2, Relationship::kPeer);
  const auto routes = ValleyFreeRoutes::compute(g, 2);
  EXPECT_FALSE(routes.at(0).reachable());
  EXPECT_TRUE(routes.at(1).reachable());
}

TEST(Solver, DirectPeerLinkUsable) {
  AsGraph g(2);
  g.add_link(0, 1, Relationship::kPeer);
  const auto routes = ValleyFreeRoutes::compute(g, 1);
  EXPECT_TRUE(routes.at(0).reachable());
  EXPECT_EQ(routes.at(0).source, RouteSource::kPeer);
}

TEST(Solver, CustomerPreferredOverShorterPeer) {
  // 0 has a direct peer link to dest 2 (length 1) and a customer route via
  // 1 (length 2).  Gao-Rexford prefers the customer route despite length.
  AsGraph g(3);
  g.add_link(0, 2, Relationship::kPeer);
  g.add_link(1, 0, Relationship::kProvider);  // 1 is 0's customer
  g.add_link(2, 1, Relationship::kProvider);  // 2 is 1's customer
  const auto routes = ValleyFreeRoutes::compute(g, 2);
  EXPECT_EQ(routes.at(0).source, RouteSource::kCustomer);
  EXPECT_EQ(routes.path_from(0), (Path{0, 1, 2}));
}

TEST(Solver, TieBreakLowestNextHop) {
  // Two equal-length customer routes to dest 3 via 1 and 2: pick 1.
  AsGraph g(4);
  g.add_link(1, 0, Relationship::kProvider);
  g.add_link(2, 0, Relationship::kProvider);
  g.add_link(3, 1, Relationship::kProvider);
  g.add_link(3, 2, Relationship::kProvider);
  const auto routes = ValleyFreeRoutes::compute(g, 3);
  EXPECT_EQ(routes.at(0).next_hop, 1u);
  EXPECT_EQ(routes.path_from(0), (Path{0, 1, 3}));
}

TEST(Solver, SiblingsExchangeEverything) {
  // 0 -sibling- 1; 1 has a provider route to 2.  The sibling hop forwards
  // it to 0 (siblings exchange all routes).
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kSibling);
  g.add_link(1, 2, Relationship::kProvider);  // 2 is 1's provider
  const auto routes = ValleyFreeRoutes::compute(g, 2);
  ASSERT_TRUE(routes.at(0).reachable());
  EXPECT_EQ(routes.path_from(0), (Path{0, 1, 2}));
  // Classified through the sibling hop: underlying provider route.
  EXPECT_TRUE(is_valley_free(g, routes.path_from(0)));
}

TEST(Solver, SiblingPeerRouteExtension) {
  // 3 -sib- 0 -peer- 1 -cust- 2(dest): 0 has a peer route; sibling 3
  // inherits it.
  AsGraph g(4);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(2, 1, Relationship::kProvider);  // 1 provides for 2
  g.add_link(3, 0, Relationship::kSibling);
  const auto routes = ValleyFreeRoutes::compute(g, 2);
  ASSERT_TRUE(routes.at(3).reachable());
  EXPECT_EQ(routes.path_from(3), (Path{3, 0, 1, 2}));
  EXPECT_EQ(classify_path(g, routes.path_from(3)), RouteSource::kPeer);
}

TEST(Solver, DownLinksIgnored) {
  AsGraph g = two_tier_fixture();
  g.set_link_up(*g.find_link(2, 4), false);
  const auto routes = ValleyFreeRoutes::compute(g, 4);
  EXPECT_FALSE(routes.at(2).reachable());
  EXPECT_FALSE(routes.at(0).reachable());
}

TEST(Solver, BadDestThrows) {
  const AsGraph g = two_tier_fixture();
  EXPECT_THROW(ValleyFreeRoutes::compute(g, 99), std::invalid_argument);
}

// --------------------------- property sweep over random topologies --------

class SolverPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(SolverPropertyTest, PathsAreValidValleyFreeAndConsistent) {
  const auto [nodes, seed] = GetParam();
  util::Rng rng(seed);
  const AsGraph g =
      topo::tiered_internet(topo::caida_like_params(nodes), rng);

  const std::size_t dest_sample = std::min<std::size_t>(nodes, 12);
  const auto dests = rng.sample_without_replacement(nodes, dest_sample);
  for (const std::size_t raw_dest : dests) {
    const NodeId dest = static_cast<NodeId>(raw_dest);
    const auto routes = ValleyFreeRoutes::compute(g, dest);
    // The tiered generator guarantees universal valley-free reachability.
    EXPECT_EQ(routes.reachable_count(), nodes);
    for (NodeId v = 0; v < nodes; ++v) {
      const Path p = routes.path_from(v);
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(p.front(), v);
      EXPECT_EQ(p.back(), dest);
      EXPECT_TRUE(topo::is_valid_path(g, p)) << topo::to_string(p);
      EXPECT_TRUE(is_valley_free(g, p)) << topo::to_string(p);
      EXPECT_EQ(routes.at(v).length, p.size() - 1);
      if (v != dest) {
        EXPECT_EQ(routes.at(v).next_hop, p[1]);
        EXPECT_EQ(classify_path(g, p), routes.at(v).source);
      }
    }
  }
}

TEST_P(SolverPropertyTest, ReachabilityIsSymmetric) {
  const auto [nodes, seed] = GetParam();
  util::Rng rng(seed ^ 0xabcdef);
  // BA + inference can leave genuinely unreachable pairs only if the repair
  // pass failed; reachability itself must still be symmetric (the reverse
  // of a valley-free path is valley-free).
  const AsGraph g = topo::brite_like(nodes, 2, 5, rng);
  const auto pairs = rng.sample_without_replacement(nodes, 6);
  for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
    const NodeId a = static_cast<NodeId>(pairs[i]);
    const NodeId b = static_cast<NodeId>(pairs[i + 1]);
    const auto to_b = ValleyFreeRoutes::compute(g, b);
    const auto to_a = ValleyFreeRoutes::compute(g, a);
    EXPECT_EQ(to_b.at(a).reachable(), to_a.at(b).reachable());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(30, 80, 200),
                       ::testing::Values<std::uint64_t>(3, 17, 4242)));

}  // namespace
}  // namespace centaur::policy

// NOTE: appended multipath tests live in their own namespace block.
namespace centaur::policy {
namespace {

using topo::AsGraph;
using topo::Relationship;

TEST(Multipath, EnumeratesCoOptimalNextHops) {
  // Two equal-length customer routes to dest 3 via 1 and 2.
  AsGraph g(4);
  g.add_link(1, 0, Relationship::kProvider);
  g.add_link(2, 0, Relationship::kProvider);
  g.add_link(3, 1, Relationship::kProvider);
  g.add_link(3, 2, Relationship::kProvider);
  const auto mp = MultipathRoutes::compute(g, 3);
  EXPECT_EQ(mp.at(0).next_hops, (std::vector<topo::NodeId>{1, 2}));
  EXPECT_EQ(mp.at(0).length, 2u);
  EXPECT_EQ(mp.at(0).source, RouteSource::kCustomer);
  EXPECT_TRUE(mp.at(3).next_hops.empty());
  EXPECT_EQ(mp.at(3).source, RouteSource::kSelf);
}

TEST(Multipath, ClassDominanceExcludesWorseClasses) {
  // 0 has a peer link to dest 2 and an equal-or-longer customer route:
  // only the customer route is maximally preferred.
  AsGraph g(3);
  g.add_link(0, 2, Relationship::kPeer);
  g.add_link(1, 0, Relationship::kProvider);
  g.add_link(2, 1, Relationship::kProvider);
  const auto mp = MultipathRoutes::compute(g, 2);
  EXPECT_EQ(mp.at(0).source, RouteSource::kCustomer);
  EXPECT_EQ(mp.at(0).next_hops, (std::vector<topo::NodeId>{1}));
}

TEST(Multipath, AgreesWithSinglePathSolver) {
  util::Rng rng(31);
  const AsGraph g = topo::tiered_internet(topo::caida_like_params(80), rng);
  for (topo::NodeId dest = 0; dest < 12; ++dest) {
    const auto single = ValleyFreeRoutes::compute(g, dest);
    const auto multi = MultipathRoutes::compute(g, dest);
    for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == dest) continue;
      ASSERT_EQ(single.at(v).reachable(), multi.at(v).reachable());
      if (!single.at(v).reachable()) continue;
      EXPECT_EQ(single.at(v).length, multi.at(v).length);
      EXPECT_EQ(policy::preference_class(single.at(v).source),
                policy::preference_class(multi.at(v).source));
      // The strict solver's choice is among the co-optimal set.
      const auto& nhs = multi.at(v).next_hops;
      EXPECT_TRUE(std::find(nhs.begin(), nhs.end(), single.at(v).next_hop) !=
                  nhs.end());
      // Strict tie-break picks the lowest co-optimal id.
      EXPECT_EQ(single.at(v).next_hop, nhs.front());
    }
  }
}

TEST(Multipath, AllDagPathsAreValleyFree) {
  util::Rng rng(32);
  const AsGraph g = topo::tiered_internet(topo::caida_like_params(60), rng);
  const topo::NodeId dest = 7;
  const auto mp = MultipathRoutes::compute(g, dest);
  // Walk a few random next-hop sequences; every one must be a valid
  // valley-free path of the advertised length.
  util::Rng walk_rng(5);
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == dest || !mp.at(v).reachable()) continue;
    topo::Path p{v};
    topo::NodeId cur = v;
    while (cur != dest) {
      const auto& nhs = mp.at(cur).next_hops;
      ASSERT_FALSE(nhs.empty());
      cur = nhs[walk_rng.index(nhs.size())];
      p.push_back(cur);
    }
    EXPECT_EQ(p.size() - 1, mp.at(v).length) << topo::to_string(p);
    EXPECT_TRUE(topo::is_valid_path(g, p)) << topo::to_string(p);
    EXPECT_TRUE(is_valley_free(g, p)) << topo::to_string(p);
  }
}

TEST(Multipath, RandomTieBreakSelectionsAreCoOptimal) {
  util::Rng rng(33);
  const AsGraph g = topo::tiered_internet(topo::caida_like_params(60), rng);
  const topo::NodeId dest = 3;
  const auto mp = MultipathRoutes::compute(g, dest);
  const auto randomized =
      ValleyFreeRoutes::compute(g, dest, TieBreak::kPerDestRandom, 1234);
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == dest || !randomized.at(v).reachable()) continue;
    const auto& nhs = mp.at(v).next_hops;
    EXPECT_TRUE(std::find(nhs.begin(), nhs.end(),
                          randomized.at(v).next_hop) != nhs.end())
        << "node " << v;
    EXPECT_EQ(randomized.at(v).length, mp.at(v).length);
  }
}

TEST(Multipath, RandomTieBreakIsDeterministicPerSeed) {
  util::Rng rng(34);
  const AsGraph g = topo::tiered_internet(topo::caida_like_params(50), rng);
  const auto a = ValleyFreeRoutes::compute(g, 5, TieBreak::kPerDestRandom, 7);
  const auto b = ValleyFreeRoutes::compute(g, 5, TieBreak::kPerDestRandom, 7);
  const auto c = ValleyFreeRoutes::compute(g, 5, TieBreak::kPerDestRandom, 8);
  std::size_t diff = 0;
  for (topo::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(a.at(v).next_hop, b.at(v).next_hop);
    diff += (a.at(v).next_hop != c.at(v).next_hop);
  }
  // A different seed should flip at least one tie on a 50-node graph.
  EXPECT_GT(diff, 0u);
}

}  // namespace
}  // namespace centaur::policy
