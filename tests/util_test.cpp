#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "util/bloom.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/scale.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace centaur::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(Rng, UniformU64RejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_u64(3, 2), std::invalid_argument);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  double lo = 1, hi = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  for (const std::size_t k : {0ul, 1ul, 5ul, 50ul, 100ul}) {
    const auto s = rng.sample_without_replacement(100, k);
    EXPECT_EQ(s.size(), k);
    const std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (std::size_t v : s) EXPECT_LT(v, 100u);
  }
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitIsIndependent) {
  Rng a(42);
  Rng child = a.split();
  Rng b(42);
  b.next();  // split consumed one draw
  EXPECT_EQ(a.next(), b.next());
  // The child stream should differ from the parent stream.
  Rng a2(42);
  EXPECT_NE(child.next(), a2.next());
}

// -------------------------------------------------------------- Bloom ----

TEST(Bloom, NoFalseNegatives) {
  BloomFilter f(100, 0.01);
  for (std::uint32_t i = 0; i < 100; ++i) f.insert(i * 7919);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_TRUE(f.contains(i * 7919));
}

TEST(Bloom, FalsePositiveRateNearTarget) {
  BloomFilter f(1000, 0.01);
  for (std::uint32_t i = 0; i < 1000; ++i) f.insert(i);
  std::size_t fp = 0;
  const std::size_t probes = 20000;
  for (std::uint32_t i = 0; i < probes; ++i) {
    if (f.contains(1'000'000 + i)) ++fp;
  }
  const double rate = static_cast<double>(fp) / static_cast<double>(probes);
  EXPECT_LT(rate, 0.03);
}

TEST(Bloom, SizedByFormula) {
  BloomFilter f(1000, 0.01);
  // ~9.6 bits/element at 1%.
  EXPECT_NEAR(static_cast<double>(f.bit_count()), 9585, 200);
  EXPECT_GE(f.hash_count(), 6u);
  EXPECT_LE(f.hash_count(), 8u);
}

TEST(Bloom, ClearResets) {
  BloomFilter f(10, 0.01);
  f.insert(1);
  EXPECT_TRUE(f.contains(1));
  f.clear();
  EXPECT_FALSE(f.contains(1));
  EXPECT_EQ(f.inserted_count(), 0u);
  EXPECT_EQ(f.fill_ratio(), 0.0);
}

TEST(Bloom, ExplicitGeometry) {
  auto f = BloomFilter::with_geometry(128, 3);
  EXPECT_EQ(f.bit_count(), 128u);
  EXPECT_EQ(f.hash_count(), 3u);
  f.insert(77);
  EXPECT_TRUE(f.contains(77));
}

TEST(Bloom, EstimatedFpTracksFill) {
  BloomFilter f(50, 0.01);
  EXPECT_EQ(f.estimated_fp_rate(), 0.0);
  for (std::uint32_t i = 0; i < 50; ++i) f.insert(i);
  EXPECT_GT(f.estimated_fp_rate(), 0.0);
  EXPECT_LT(f.estimated_fp_rate(), 0.05);
}

// -------------------------------------------------------------- Stats ----

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) a.add(v);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_NEAR(a.stddev(), 1.118, 1e-3);
}

TEST(Accumulator, Quantiles) {
  Accumulator a;
  for (int i = 1; i <= 100; ++i) a.add(i);
  EXPECT_NEAR(a.median(), 50.5, 1e-9);
  EXPECT_NEAR(a.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(a.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(a.quantile(0.9), 90.1, 1e-9);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator a;
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.quantile(0.5), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Cdf, AtAndInverse) {
  Cdf cdf({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(3), 0.6);
  EXPECT_DOUBLE_EQ(cdf.at(100), 1.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.2), 1.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 5.0);
}

TEST(Cdf, SeriesMonotone) {
  std::vector<double> samples;
  for (int i = 0; i < 57; ++i) samples.push_back(i * i % 101);
  Cdf cdf(samples);
  const auto series = cdf.series(10);
  ASSERT_EQ(series.size(), 10u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(BucketHistogram, Table5Buckets) {
  BucketHistogram h({1, 2, 3});
  for (const double v : {1, 2, 2, 2, 3, 4, 9}) h.add(v);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.count(0), 1u);  // <= 1
  EXPECT_EQ(h.count(1), 3u);  // (1, 2]
  EXPECT_EQ(h.count(2), 1u);  // (2, 3]
  EXPECT_EQ(h.count(3), 2u);  // > 3
  EXPECT_NEAR(h.fraction(1), 3.0 / 7, 1e-12);
  EXPECT_EQ(h.label(0), "<= 1");
  EXPECT_EQ(h.label(3), "> 3");
}

TEST(BucketHistogram, RejectsUnsortedBounds) {
  EXPECT_THROW(BucketHistogram({3, 1}), std::invalid_argument);
}

// -------------------------------------------------------------- Table ----

TEST(TextTable, AlignsAndPrints) {
  TextTable t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha | 1"), std::string::npos);
  EXPECT_NE(s.find("b     | 22"), std::string::npos);
}

TEST(Format, Helpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.919, 1), "91.9%");
  EXPECT_EQ(fmt_count(52691), "52,691");
  EXPECT_EQ(fmt_count(7), "7");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

// -------------------------------------------------------------- Scale ----

TEST(Scale, ParamsDiffer) {
  const auto smoke = params_for(Scale::kSmoke);
  const auto def = params_for(Scale::kDefault);
  const auto large = params_for(Scale::kLarge);
  EXPECT_LT(smoke.caida_like_nodes, def.caida_like_nodes);
  EXPECT_LT(def.caida_like_nodes, large.caida_like_nodes);
  EXPECT_EQ(large.proto_nodes, 500u);  // the paper's prototype size
  EXPECT_STREQ(to_string(Scale::kSmoke), "smoke");
}

}  // namespace
}  // namespace centaur::util

namespace centaur::util {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Log, SuppressedLevelsDoNotEmit) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  CENTAUR_LOG(kDebug) << "should not appear";
  CENTAUR_LOG(kError) << "should appear";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
  set_log_level(before);
}

}  // namespace
}  // namespace centaur::util
