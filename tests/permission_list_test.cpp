#include <gtest/gtest.h>

#include "centaur/permission_list.hpp"

namespace centaur::core {
namespace {

TEST(PermissionList, AddAndPermit) {
  PermissionList pl;
  EXPECT_TRUE(pl.empty());
  pl.add(7, 3);
  EXPECT_TRUE(pl.permits(7, 3));
  EXPECT_FALSE(pl.permits(7, 4));
  EXPECT_FALSE(pl.permits(8, 3));
  EXPECT_FALSE(pl.empty());
}

TEST(PermissionList, SentinelNextHopForSelfDestination) {
  PermissionList pl;
  pl.add(5, kNoNextHop);
  EXPECT_TRUE(pl.permits(5, kNoNextHop));
  EXPECT_FALSE(pl.permits(5, 1));
}

TEST(PermissionList, GroupsDestinationsByNextHop) {
  PermissionList pl;
  pl.add(1, 9);
  pl.add(2, 9);
  pl.add(3, 9);
  pl.add(4, 8);
  // Destinations sharing a next hop collapse into one entry (S4.1).
  EXPECT_EQ(pl.entry_count(), 2u);
  EXPECT_EQ(pl.dest_count(), 4u);
  const auto entries = pl.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].next_hop, 8u);
  EXPECT_EQ(entries[0].dests, (std::vector<NodeId>{4}));
  EXPECT_EQ(entries[1].next_hop, 9u);
  EXPECT_EQ(entries[1].dests, (std::vector<NodeId>{1, 2, 3}));
}

TEST(PermissionList, AddIsIdempotent) {
  PermissionList pl;
  pl.add(1, 2);
  pl.add(1, 2);
  EXPECT_EQ(pl.entry_count(), 1u);
  EXPECT_EQ(pl.dest_count(), 1u);
}

TEST(PermissionList, RemovePairAndEntryCleanup) {
  PermissionList pl;
  pl.add(1, 2);
  pl.add(3, 2);
  EXPECT_TRUE(pl.remove(1, 2));
  EXPECT_FALSE(pl.remove(1, 2));
  EXPECT_TRUE(pl.permits(3, 2));
  EXPECT_TRUE(pl.remove(3, 2));
  EXPECT_TRUE(pl.empty());
}

TEST(PermissionList, RemoveDestAcrossEntries) {
  PermissionList pl;
  pl.add(1, 2);
  pl.add(1, 3);
  pl.add(4, 3);
  EXPECT_EQ(pl.remove_dest(1), 2u);
  EXPECT_FALSE(pl.permits(1, 2));
  EXPECT_TRUE(pl.permits(4, 3));
  EXPECT_EQ(pl.entry_count(), 1u);
}

TEST(PermissionList, FilteredKeepsOnlyAllowedDests) {
  PermissionList pl;
  pl.add(1, 9);
  pl.add(2, 9);
  pl.add(3, 8);
  const PermissionList f =
      pl.filtered([](NodeId dest) { return dest != 2; });
  EXPECT_TRUE(f.permits(1, 9));
  EXPECT_FALSE(f.permits(2, 9));
  EXPECT_TRUE(f.permits(3, 8));
  // Original untouched.
  EXPECT_TRUE(pl.permits(2, 9));
}

TEST(PermissionList, Equality) {
  PermissionList a, b;
  a.add(1, 2);
  b.add(1, 2);
  EXPECT_TRUE(a == b);
  b.add(3, 2);
  EXPECT_FALSE(a == b);
}

TEST(PermissionList, ByteSizeEncodings) {
  PermissionList pl;
  for (NodeId d = 0; d < 100; ++d) pl.add(d, 9);
  const std::size_t raw = pl.byte_size(false);
  EXPECT_EQ(raw, 4u + 4u * 100u);
  const std::size_t bloom = pl.byte_size(true);
  // 100 dests at 1% fp ~ 960 bits = 120 bytes, word-rounded.
  EXPECT_LT(bloom, raw);
  EXPECT_GT(bloom, 4u + 64u);
}

TEST(PermissionList, BloomCompressionHasNoFalseNegatives) {
  std::vector<NodeId> dests;
  for (NodeId d = 100; d < 150; ++d) dests.push_back(d);
  const auto f = PermissionList::compress_dests(dests);
  for (NodeId d : dests) EXPECT_TRUE(f.contains(d));
}

TEST(ExhaustiveEncoding, StoresFullPaths) {
  ExhaustivePermissionList pl;
  pl.add({1, 2, 3});
  pl.add({1, 4, 3});
  EXPECT_TRUE(pl.permits({1, 2, 3}));
  EXPECT_FALSE(pl.permits({1, 2, 4}));
  EXPECT_EQ(pl.path_count(), 2u);
  EXPECT_EQ(pl.byte_size(), 2u * (3u * 4u + 2u));
}

TEST(Encodings, PerDestNextIsSmallerForSharedNextHops) {
  // Equivalence claim of S4.1: the two encodings describe the same path
  // sets, but per-dest-next is far more compact when many destinations
  // share a next hop.
  PermissionList compact;
  ExhaustivePermissionList exhaustive;
  // 50 destinations behind the same next hop, paths of length 5.
  for (NodeId d = 0; d < 50; ++d) {
    compact.add(1000 + d, 7);
    exhaustive.add({1, 2, 3, 7, 1000 + d});
  }
  EXPECT_LT(compact.byte_size(false), exhaustive.byte_size());
}

}  // namespace
}  // namespace centaur::core
