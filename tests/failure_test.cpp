// Failure-injection properties: after arbitrary link flips every protocol
// must reconverge to the static solution of the mutated topology, and
// Centaur's update volume must reflect its root-cause, link-level design.
#include <gtest/gtest.h>

#include <tuple>

#include "bgp/bgp_node.hpp"
#include "centaur/centaur_node.hpp"
#include "eval/experiments.hpp"
#include "faults/campaign.hpp"
#include "linkstate/ospf_node.hpp"
#include "policy/valley_free.hpp"
#include "test_helpers.hpp"
#include "topology/generator.hpp"

namespace centaur {
namespace {

using centaur::testing::TestNet;
using topo::AsGraph;
using topo::LinkId;
using topo::NodeId;
using topo::Path;

class FailureSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

template <typename NodeT>
void expect_matches_solver(TestNet<NodeT>& net, const AsGraph& graph) {
  const std::size_t n = graph.num_nodes();
  for (NodeId dest = 0; dest < n; ++dest) {
    const auto solver = policy::ValleyFreeRoutes::compute(graph, dest);
    for (NodeId v = 0; v < n; ++v) {
      if (v == dest) continue;
      const auto got = net.node(v).selected_path(dest);
      if (!solver.at(v).reachable()) {
        EXPECT_FALSE(got.has_value()) << v << "->" << dest;
      } else {
        ASSERT_TRUE(got.has_value()) << v << "->" << dest;
        EXPECT_EQ(*got, solver.path_from(v)) << v << "->" << dest;
      }
    }
  }
}

TEST_P(FailureSweep, ProtocolsTrackSolverThroughFlips) {
  const auto [nodes, seed] = GetParam();
  util::Rng rng(seed);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(nodes), rng);

  TestNet<bgp::BgpNode> bgp_net(graph);
  TestNet<core::CentaurNode> centaur_net(graph);

  util::Rng flip_rng(seed ^ 0x5eed);
  const auto flips =
      flip_rng.sample_without_replacement(graph.num_links(), 4);
  for (const std::size_t raw : flips) {
    const LinkId link = static_cast<LinkId>(raw);
    for (const bool up : {false, true}) {
      bgp_net.flip(link, up);
      centaur_net.flip(link, up);
      // Both protocol instances mutated their own graph copies; verify
      // against the state of each copy (they are identical by seed).
      expect_matches_solver(bgp_net, bgp_net.graph());
      expect_matches_solver(centaur_net, centaur_net.graph());
    }
  }
}

TEST_P(FailureSweep, CentaurUsesFewerMessagesThanBgpOnFailure) {
  const auto [nodes, seed] = GetParam();
  util::Rng rng(seed);
  const AsGraph graph =
      topo::tiered_internet(topo::caida_like_params(nodes), rng);

  TestNet<bgp::BgpNode> bgp_net(graph);
  TestNet<core::CentaurNode> centaur_net(graph);

  util::Rng flip_rng(seed ^ 0xfeed);
  const auto flips =
      flip_rng.sample_without_replacement(graph.num_links(), 6);
  std::size_t bgp_total = 0, centaur_total = 0;
  for (const std::size_t raw : flips) {
    const LinkId link = static_cast<LinkId>(raw);
    for (const bool up : {false, true}) {
      bgp_total += bgp_net.flip(link, up);
      centaur_total += centaur_net.flip(link, up);
    }
  }
  // Aggregate over a dozen transitions Centaur must not exceed BGP; on
  // realistic topologies it is far below (Fig 5: 100-1000x).
  EXPECT_LE(centaur_total, bgp_total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FailureSweep,
    ::testing::Combine(::testing::Values<std::size_t>(25, 50),
                       ::testing::Values<std::uint64_t>(11, 77)));

// ------------------------------------------------------ harness checks ----

TEST(ProtocolRun, ColdStartConvergesAllProtocols) {
  util::Rng rng(3);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(30), rng);
  for (const auto proto :
       {eval::Protocol::kBgp, eval::Protocol::kCentaur, eval::Protocol::kOspf}) {
    util::Rng run_rng(3);
    eval::ProtocolRun run(graph, proto, run_rng);
    EXPECT_GT(run.cold_start().messages_sent, 0u) << eval::to_string(proto);
    EXPECT_GT(run.cold_start_time(), 0.0) << eval::to_string(proto);
  }
}

TEST(ProtocolRun, FlipSeriesShapes) {
  util::Rng rng(4);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(30), rng);
  const auto series =
      eval::run_link_flips(graph, eval::Protocol::kCentaur, 5, util::Rng(9));
  EXPECT_EQ(series.convergence_times.size(), 10u);  // down + up per link
  EXPECT_EQ(series.message_counts.size(), 10u);
}

TEST(ProtocolRun, IdenticalSeedsGiveIdenticalFlipSequences) {
  util::Rng rng(5);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(25), rng);
  const auto a = eval::run_link_flips(graph, eval::Protocol::kBgp, 4, util::Rng(1));
  const auto b = eval::run_link_flips(graph, eval::Protocol::kBgp, 4, util::Rng(1));
  EXPECT_EQ(a.message_counts, b.message_counts);
  EXPECT_EQ(a.convergence_times, b.convergence_times);
}

// --------------------------------------------- campaign-driven faults ----
// After a crash/restart or partition/heal campaign returns the topology to
// its initial state, every protocol's selected paths must equal a fresh
// cold start — transient faults leave no residue in protocol state.

/// The path `v` currently selects toward `dest`, uniformly across the four
/// protocol node types (nullopt = unreachable).
std::optional<Path> selected(sim::Network& net, eval::Protocol proto,
                             NodeId v, NodeId dest) {
  sim::Node& node = net.node(v);
  switch (proto) {
    case eval::Protocol::kBgp:
    case eval::Protocol::kBgpRcn:
      return dynamic_cast<bgp::BgpNode&>(node).selected_path(dest);
    case eval::Protocol::kCentaur:
      return dynamic_cast<core::CentaurNode&>(node).selected_path(dest);
    case eval::Protocol::kOspf: {
      Path p = dynamic_cast<linkstate::OspfNode&>(node).shortest_path(dest);
      if (p.empty()) return std::nullopt;
      return p;
    }
  }
  return std::nullopt;
}

std::vector<std::optional<Path>> all_selected(eval::ProtocolRun& run) {
  const std::size_t n = run.graph().num_nodes();
  std::vector<std::optional<Path>> out;
  out.reserve(n * n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId dest = 0; dest < n; ++dest) {
      if (v == dest) continue;
      out.push_back(selected(run.network(), run.protocol(), v, dest));
    }
  }
  return out;
}

class CampaignFaults : public ::testing::TestWithParam<eval::Protocol> {
 protected:
  static AsGraph make_graph() {
    util::Rng rng(11);
    return topo::tiered_internet(topo::caida_like_params(24), rng);
  }

  /// Runs `script` to completion, then asserts the post-campaign selected
  /// paths equal a cold-start reference obtained via reset() (same seed
  /// stream as the original construction, no AS-graph re-copy).
  static void expect_cold_start_paths_after(const faults::FaultScript& script) {
    const AsGraph graph = make_graph();
    util::Rng rng(5);
    eval::ProtocolRun run(graph, GetParam(), rng);
    faults::CampaignEngine engine(run);
    const faults::CampaignResult result = engine.run(script);
    EXPECT_TRUE(result.clean());
    const auto after = all_selected(run);

    util::Rng reset_rng(5);
    run.reset(reset_rng);
    EXPECT_EQ(after, all_selected(run));
  }
};

TEST_P(CampaignFaults, CrashRestartRestoresColdStartPaths) {
  const AsGraph graph = make_graph();
  NodeId victim = 0;
  while (graph.degree(victim) < 2) ++victim;
  faults::FaultScript script;
  script.phases.push_back(
      {"crash", {faults::FaultAction::node_crash(victim)}});
  script.phases.push_back(
      {"restart", {faults::FaultAction::node_restart(victim)}});
  expect_cold_start_paths_after(script);
}

TEST_P(CampaignFaults, PartitionHealRestoresColdStartPaths) {
  const AsGraph graph = make_graph();
  // Cut off one multi-homed node; mid-partition it must be unreachable,
  // post-heal everything must match a cold start.
  NodeId isolated = 0;
  while (graph.degree(isolated) < 2) ++isolated;
  faults::FaultScript script;
  script.partitions.push_back({isolated});
  script.phases.push_back({"cut", {faults::FaultAction::partition(0)}});
  script.phases.push_back({"stitch", {faults::FaultAction::heal(0)}});

  util::Rng rng(5);
  eval::ProtocolRun run(graph, GetParam(), rng);
  faults::CampaignEngine engine(run);
  engine.run_phase(script, script.phases[0]);
  const NodeId observer = isolated == 0 ? 1 : 0;
  EXPECT_FALSE(
      selected(run.network(), run.protocol(), observer, isolated).has_value())
      << "partitioned node must be unreachable across the cut";
  engine.run_phase(script, script.phases[1]);
  EXPECT_TRUE(engine.result().clean());
  const auto after = all_selected(run);

  util::Rng reset_rng(5);
  run.reset(reset_rng);
  EXPECT_EQ(after, all_selected(run));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, CampaignFaults,
    ::testing::ValuesIn(std::begin(eval::kAllProtocols),
                        std::end(eval::kAllProtocols)),
    [](const ::testing::TestParamInfo<eval::Protocol>& param) {
      std::string name = eval::to_string(param.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace centaur
