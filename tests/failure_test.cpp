// Failure-injection properties: after arbitrary link flips every protocol
// must reconverge to the static solution of the mutated topology, and
// Centaur's update volume must reflect its root-cause, link-level design.
#include <gtest/gtest.h>

#include <tuple>

#include "bgp/bgp_node.hpp"
#include "centaur/centaur_node.hpp"
#include "eval/experiments.hpp"
#include "policy/valley_free.hpp"
#include "test_helpers.hpp"
#include "topology/generator.hpp"

namespace centaur {
namespace {

using centaur::testing::TestNet;
using topo::AsGraph;
using topo::LinkId;
using topo::NodeId;
using topo::Path;

class FailureSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

template <typename NodeT>
void expect_matches_solver(TestNet<NodeT>& net, const AsGraph& graph) {
  const std::size_t n = graph.num_nodes();
  for (NodeId dest = 0; dest < n; ++dest) {
    const auto solver = policy::ValleyFreeRoutes::compute(graph, dest);
    for (NodeId v = 0; v < n; ++v) {
      if (v == dest) continue;
      const auto got = net.node(v).selected_path(dest);
      if (!solver.at(v).reachable()) {
        EXPECT_FALSE(got.has_value()) << v << "->" << dest;
      } else {
        ASSERT_TRUE(got.has_value()) << v << "->" << dest;
        EXPECT_EQ(*got, solver.path_from(v)) << v << "->" << dest;
      }
    }
  }
}

TEST_P(FailureSweep, ProtocolsTrackSolverThroughFlips) {
  const auto [nodes, seed] = GetParam();
  util::Rng rng(seed);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(nodes), rng);

  TestNet<bgp::BgpNode> bgp_net(graph);
  TestNet<core::CentaurNode> centaur_net(graph);

  util::Rng flip_rng(seed ^ 0x5eed);
  const auto flips =
      flip_rng.sample_without_replacement(graph.num_links(), 4);
  for (const std::size_t raw : flips) {
    const LinkId link = static_cast<LinkId>(raw);
    for (const bool up : {false, true}) {
      bgp_net.flip(link, up);
      centaur_net.flip(link, up);
      // Both protocol instances mutated their own graph copies; verify
      // against the state of each copy (they are identical by seed).
      expect_matches_solver(bgp_net, bgp_net.graph());
      expect_matches_solver(centaur_net, centaur_net.graph());
    }
  }
}

TEST_P(FailureSweep, CentaurUsesFewerMessagesThanBgpOnFailure) {
  const auto [nodes, seed] = GetParam();
  util::Rng rng(seed);
  const AsGraph graph =
      topo::tiered_internet(topo::caida_like_params(nodes), rng);

  TestNet<bgp::BgpNode> bgp_net(graph);
  TestNet<core::CentaurNode> centaur_net(graph);

  util::Rng flip_rng(seed ^ 0xfeed);
  const auto flips =
      flip_rng.sample_without_replacement(graph.num_links(), 6);
  std::size_t bgp_total = 0, centaur_total = 0;
  for (const std::size_t raw : flips) {
    const LinkId link = static_cast<LinkId>(raw);
    for (const bool up : {false, true}) {
      bgp_total += bgp_net.flip(link, up);
      centaur_total += centaur_net.flip(link, up);
    }
  }
  // Aggregate over a dozen transitions Centaur must not exceed BGP; on
  // realistic topologies it is far below (Fig 5: 100-1000x).
  EXPECT_LE(centaur_total, bgp_total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FailureSweep,
    ::testing::Combine(::testing::Values<std::size_t>(25, 50),
                       ::testing::Values<std::uint64_t>(11, 77)));

// ------------------------------------------------------ harness checks ----

TEST(ProtocolRun, ColdStartConvergesAllProtocols) {
  util::Rng rng(3);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(30), rng);
  for (const auto proto :
       {eval::Protocol::kBgp, eval::Protocol::kCentaur, eval::Protocol::kOspf}) {
    util::Rng run_rng(3);
    eval::ProtocolRun run(graph, proto, run_rng);
    EXPECT_GT(run.cold_start().messages_sent, 0u) << eval::to_string(proto);
    EXPECT_GT(run.cold_start_time(), 0.0) << eval::to_string(proto);
  }
}

TEST(ProtocolRun, FlipSeriesShapes) {
  util::Rng rng(4);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(30), rng);
  const auto series =
      eval::run_link_flips(graph, eval::Protocol::kCentaur, 5, util::Rng(9));
  EXPECT_EQ(series.convergence_times.size(), 10u);  // down + up per link
  EXPECT_EQ(series.message_counts.size(), 10u);
}

TEST(ProtocolRun, IdenticalSeedsGiveIdenticalFlipSequences) {
  util::Rng rng(5);
  const AsGraph graph = topo::tiered_internet(topo::caida_like_params(25), rng);
  const auto a = eval::run_link_flips(graph, eval::Protocol::kBgp, 4, util::Rng(1));
  const auto b = eval::run_link_flips(graph, eval::Protocol::kBgp, 4, util::Rng(1));
  EXPECT_EQ(a.message_counts, b.message_counts);
  EXPECT_EQ(a.convergence_times, b.convergence_times);
}

}  // namespace
}  // namespace centaur
