// util::NodeMap — dual-mode node-indexed map (dense below the id limit,
// content-sized above it).  The protocol-level guarantee that matters is
// mode transparency: every observable (find/ensure/for_each order) is
// identical whether the map is dense, sparse, or converted mid-life.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/node_map.hpp"
#include "util/small_vec.hpp"

namespace centaur::util {
namespace {

using List = SmallVec<std::uint32_t, 4>;

TEST(NodeMap, DenseFindAndEnsureMatchPlainVectorSemantics) {
  NodeMap<List> m;
  EXPECT_FALSE(m.sparse());
  EXPECT_EQ(m.find(0), nullptr);

  m.ensure(5).push_back(50);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ(m.find(5)->size(), 1u);
  // Dense mode materializes slots below the largest touched id — present
  // but empty, exactly like the plain vector it replaces.
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_TRUE(m.find(3)->empty());
  EXPECT_EQ(m.find(6), nullptr);
  EXPECT_FALSE(m.sparse());
}

TEST(NodeMap, ReserveIdsBelowLimitStaysDense) {
  NodeMap<List> m;
  m.reserve_ids(1000);
  EXPECT_FALSE(m.sparse());
  ASSERT_NE(m.find(999), nullptr);
  EXPECT_TRUE(m.find(999)->empty());
}

TEST(NodeMap, ReserveIdsAtLimitSwitchesSparse) {
  NodeMap<List> m;
  m.ensure(7).push_back(70);
  m.reserve_ids(kNodeMapDenseLimit + 1);
  EXPECT_TRUE(m.sparse());
  // Content survives conversion; empty dense slots are dropped.
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ((*m.find(7))[0], 70u);
  EXPECT_EQ(m.find(3), nullptr);
}

TEST(NodeMap, EnsurePastLimitConvertsLazily) {
  NodeMap<List> m;
  m.ensure(2).push_back(20);
  m.ensure(4);  // stays empty -> dropped at conversion
  EXPECT_FALSE(m.sparse());

  const auto big = static_cast<std::uint32_t>(kNodeMapDenseLimit) + 17;
  m.ensure(big).push_back(99);
  EXPECT_TRUE(m.sparse());
  ASSERT_NE(m.find(2), nullptr);
  EXPECT_EQ((*m.find(2))[0], 20u);
  EXPECT_EQ(m.find(4), nullptr);
  ASSERT_NE(m.find(big), nullptr);
  EXPECT_EQ((*m.find(big))[0], 99u);
}

TEST(NodeMap, ForEachVisitsAscendingInBothModes) {
  NodeMap<List> dense;
  NodeMap<List> sparse;
  sparse.reserve_ids(kNodeMapDenseLimit + 1);
  for (const std::uint32_t id : {40u, 7u, 19u, 3u}) {
    dense.ensure(id).push_back(id);
    sparse.ensure(id).push_back(id);
  }
  const auto non_empty_ids = [](const NodeMap<List>& m) {
    std::vector<std::uint32_t> out;
    m.for_each([&](std::uint32_t id, const List& v) {
      if (!v.empty()) out.push_back(id);
    });
    return out;
  };
  const std::vector<std::uint32_t> want{3, 7, 19, 40};
  EXPECT_EQ(non_empty_ids(dense), want);
  EXPECT_EQ(non_empty_ids(sparse), want);
}

TEST(NodeMap, ClearValuesEmptiesBothModes) {
  for (const bool go_sparse : {false, true}) {
    NodeMap<List> m;
    if (go_sparse) m.reserve_ids(kNodeMapDenseLimit + 1);
    m.ensure(11).push_back(1);
    m.ensure(12).push_back(2);
    m.clear_values();
    std::size_t non_empty = 0;
    m.for_each([&](std::uint32_t, const List& v) {
      if (!v.empty()) ++non_empty;
    });
    EXPECT_EQ(non_empty, 0u) << (go_sparse ? "sparse" : "dense");
  }
}

}  // namespace
}  // namespace centaur::util
