#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "centaur/build_graph.hpp"
#include "policy/valley_free.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace centaur::core {
namespace {

constexpr NodeId A = 0, B = 1, C = 2, D = 3, Dp = 4;

std::map<NodeId, Path> fig4_selection() {
  return {
      {A, {C, A}},
      {B, {C, A, B}},
      {D, {C, A, B, D}},
      {Dp, {C, D, Dp}},
  };
}

TEST(BuildGraph, LinksAndDestinations) {
  const PGraph g = build_local_pgraph(C, fig4_selection());
  EXPECT_EQ(g.root(), C);
  EXPECT_EQ(g.num_links(), 5u);
  EXPECT_TRUE(g.has_link(C, A));
  EXPECT_TRUE(g.has_link(A, B));
  EXPECT_TRUE(g.has_link(B, D));
  EXPECT_TRUE(g.has_link(C, D));
  EXPECT_TRUE(g.has_link(D, Dp));
  EXPECT_EQ(std::vector<NodeId>(g.destinations().begin(),
                                g.destinations().end()),
            (std::vector<NodeId>{A, B, D, Dp}));
}

TEST(BuildGraph, CountersTrackPathsPerLink) {
  const PGraph g = build_local_pgraph(C, fig4_selection());
  // C->A lies on the paths to A, B and D.
  EXPECT_EQ(g.link_data(C, A).counter, 3u);
  EXPECT_EQ(g.link_data(A, B).counter, 2u);
  EXPECT_EQ(g.link_data(B, D).counter, 1u);
  EXPECT_EQ(g.link_data(C, D).counter, 1u);
  EXPECT_EQ(g.link_data(D, Dp).counter, 1u);
}

TEST(BuildGraph, PermissionListsOnMultiHomedHead) {
  const PGraph g = build_local_pgraph(C, fig4_selection());
  EXPECT_TRUE(g.multi_homed(D));
  // Table 2 line 7: entries keyed by the next hop of the multi-homed node.
  EXPECT_TRUE(g.link_data(B, D).plist.permits(D, kNoNextHop));
  EXPECT_TRUE(g.link_data(C, D).plist.permits(Dp, Dp));
  EXPECT_FALSE(g.link_data(C, D).plist.permits(D, kNoNextHop));
  EXPECT_EQ(g.active_plist_count(), 2u);
}

TEST(BuildGraph, TrivialSelfPathOnlyMarksDestination) {
  const std::map<NodeId, Path> sel{{C, {C}}};
  const PGraph g = build_local_pgraph(C, sel);
  EXPECT_EQ(g.num_links(), 0u);
  EXPECT_TRUE(g.is_destination(C));
}

TEST(BuildGraph, RejectsPathNotStartingAtRoot) {
  const std::map<NodeId, Path> sel{{D, {A, D}}};
  EXPECT_THROW(build_local_pgraph(C, sel), std::invalid_argument);
}

TEST(BuildGraph, RejectsPathNotEndingAtDest) {
  const std::map<NodeId, Path> sel{{D, {C, A}}};
  EXPECT_THROW(build_local_pgraph(C, sel), std::invalid_argument);
}

TEST(BuildGraph, RetroactivePermissionsWhenNodeBecomesMultiHomed) {
  // First path makes D single-homed; the second gives it a second parent.
  // Entries recorded for the first path must then be visible (the paper's
  // S4.3.2: a Permission List is created when a multi-homed node appears).
  std::map<NodeId, Path> sel{
      {D, {C, A, B, D}},  // D single-homed so far
      {Dp, {C, D, Dp}},   // now D is multi-homed
  };
  sel[A] = {C, A};
  sel[B] = {C, A, B};
  const PGraph g = build_local_pgraph(C, sel);
  EXPECT_TRUE(g.multi_homed(D));
  // The (D, kNoNextHop) entry from the first path must be active on B->D.
  EXPECT_TRUE(g.plist_active(B, D));
  EXPECT_TRUE(g.link_data(B, D).plist.permits(D, kNoNextHop));
}

// ------------------- property: DerivePath inverts BuildGraph --------------

class BuildDeriveRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(BuildDeriveRoundTrip, DerivePathReturnsExactlySelectedPaths) {
  const auto [nodes, seed] = GetParam();
  util::Rng rng(seed);
  const topo::AsGraph topo =
      topo::tiered_internet(topo::caida_like_params(nodes), rng);

  // A handful of vantage points, complete destination set each.
  const auto vantages = rng.sample_without_replacement(nodes, 4);
  // Selected paths from the static valley-free solution.
  std::vector<std::map<NodeId, Path>> selected(vantages.size());
  for (NodeId dest = 0; dest < nodes; ++dest) {
    const auto routes = policy::ValleyFreeRoutes::compute(topo, dest);
    for (std::size_t i = 0; i < vantages.size(); ++i) {
      const NodeId v = static_cast<NodeId>(vantages[i]);
      if (v == dest) {
        selected[i][dest] = Path{v};
      } else if (routes.at(v).reachable()) {
        selected[i][dest] = routes.path_from(v);
      }
    }
  }

  for (std::size_t i = 0; i < vantages.size(); ++i) {
    const NodeId v = static_cast<NodeId>(vantages[i]);
    const PGraph g = build_local_pgraph(v, selected[i]);
    // Invariant 4 (DESIGN.md): the unique derivable path per destination is
    // the path the creator selected.
    for (const auto& [dest, path] : selected[i]) {
      const auto derived = g.derive_path(dest);
      ASSERT_TRUE(derived.has_value()) << "dest " << dest;
      EXPECT_EQ(*derived, path) << "dest " << dest;
    }
    // Counter invariant 6: counter equals number of selected paths through
    // the link.
    std::map<DirectedLink, std::uint32_t> expect_counts;
    for (const auto& [dest, path] : selected[i]) {
      for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        ++expect_counts[DirectedLink{path[k], path[k + 1]}];
      }
    }
    for (const auto& [link, data] : g.links()) {
      EXPECT_EQ(data.counter, expect_counts.at(link));
    }
    EXPECT_EQ(expect_counts.size(), g.num_links());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuildDeriveRoundTrip,
    ::testing::Combine(::testing::Values<std::size_t>(30, 100),
                       ::testing::Values<std::uint64_t>(2, 23, 1001)));

}  // namespace
}  // namespace centaur::core

namespace centaur::core {
namespace {

TEST(MinimizePlists, DefaultLinkClearedOthersKeepEntries) {
  // Fig 4 selection: D multi-homed with in-links B->D (carries dest D,
  // 1 dest) and C->D (carries dest D', 1 dest).  The sentinel-bearing
  // in-link B->D becomes the default.
  const std::map<NodeId, Path> sel{
      {0, {2, 0}},        // A
      {1, {2, 0, 1}},     // B
      {3, {2, 0, 1, 3}},  // D via the long path
      {4, {2, 3, 4}},     // D' via the short path
  };
  PGraph g = build_local_pgraph(2, sel);
  ASSERT_TRUE(g.multi_homed(3));
  const std::size_t cleared = minimize_permission_lists(g);
  EXPECT_EQ(cleared, 1u);
  EXPECT_TRUE(g.link_data(1, 3).plist.empty());      // default (sentinel)
  EXPECT_FALSE(g.link_data(2, 3).plist.empty());     // exceptional
  EXPECT_TRUE(g.link_data(2, 3).plist.permits(4, 4));
  // DerivePath still resolves both destinations correctly through the
  // explicit-permission-first / default-fallback rule.
  EXPECT_EQ(*g.derive_path(3), (Path{2, 0, 1, 3}));
  EXPECT_EQ(*g.derive_path(4), (Path{2, 3, 4}));
}

TEST(MinimizePlists, NoopOnTreePGraph) {
  const std::map<NodeId, Path> sel{{1, {0, 1}}, {2, {0, 1, 2}}};
  PGraph g = build_local_pgraph(0, sel);
  EXPECT_EQ(minimize_permission_lists(g), 0u);
}

TEST(MinimizePlists, DerivedPathsUnchangedOnRandomTopologies) {
  util::Rng rng(55);
  const topo::AsGraph topo =
      topo::tiered_internet(topo::caida_like_params(60), rng);
  const NodeId vantage = 11;
  std::map<NodeId, Path> selected;
  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    if (dest == vantage) {
      selected[dest] = Path{vantage};
      continue;
    }
    const auto routes = policy::ValleyFreeRoutes::compute(
        topo, dest, policy::TieBreak::kPerDestRandom, 99);
    if (routes.at(vantage).reachable()) {
      selected[dest] = routes.path_from(vantage);
    }
  }
  PGraph g = build_local_pgraph(vantage, selected);
  minimize_permission_lists(g);
  for (const auto& [dest, path] : selected) {
    const auto derived = g.derive_path(dest);
    ASSERT_TRUE(derived.has_value()) << dest;
    EXPECT_EQ(*derived, path) << dest;
  }
}

TEST(MinimizePlists, IncrementalBatchesMatchFullPass) {
  util::Rng rng(77);
  const topo::AsGraph topo =
      topo::tiered_internet(topo::caida_like_params(60), rng);
  const NodeId vantage = 7;
  std::map<NodeId, Path> selected;
  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    if (dest == vantage) {
      selected[dest] = Path{vantage};
      continue;
    }
    const auto routes = policy::ValleyFreeRoutes::compute(
        topo, dest, policy::TieBreak::kPerDestRandom, 42);
    if (routes.at(vantage).reachable()) {
      selected[dest] = routes.path_from(vantage);
    }
  }
  PGraph full = build_local_pgraph(vantage, selected);
  PGraph batched = full;
  std::vector<NodeId> heads;
  for (const auto& [link, data] : full.links()) heads.push_back(link.to);
  std::sort(heads.begin(), heads.end());
  heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
  ASSERT_FALSE(heads.empty());
  const std::size_t cleared_full = minimize_permission_lists(full);
  // Partition the candidate heads (still containing single-homed entries)
  // into two batches; batched minimization must land on the same graph and
  // the same cleared count.  Heads may not repeat across batches — the
  // scheme is not idempotent per head.
  const auto half =
      static_cast<std::ptrdiff_t>(heads.size()) / 2;
  std::size_t cleared_batched = minimize_permission_lists_at(
      batched, std::vector<NodeId>(heads.begin(), heads.begin() + half));
  cleared_batched += minimize_permission_lists_at(
      batched, std::vector<NodeId>(heads.begin() + half, heads.end()));
  EXPECT_EQ(cleared_batched, cleared_full);
  EXPECT_EQ(batched, full);
}

TEST(BuildGraph, AcceptsAnyDestPathPairContainer) {
  // The template form accepts the node's own container or an ad-hoc pair
  // vector — no std::map round trip required.
  const std::vector<std::pair<NodeId, Path>> sel{
      {0, {2, 0}}, {1, {2, 0, 1}}, {3, {2, 0, 1, 3}}, {4, {2, 3, 4}}};
  const std::map<NodeId, Path> as_map(sel.begin(), sel.end());
  EXPECT_EQ(build_local_pgraph(2, sel), build_local_pgraph(2, as_map));
}

TEST(DerivePathFallback, TwoUnlistedInLinksAreAmbiguous) {
  PGraph g(0);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(1, 3);
  g.add_link(2, 3);
  g.mark_destination(3);
  // 3 is multi-homed with no permission lists at all: ambiguous.
  EXPECT_FALSE(g.derive_path(3).has_value());
  // One explicit permission resolves it.
  g.link_data(1, 3).plist.add(3, kNoNextHop);
  EXPECT_EQ(*g.derive_path(3), (Path{0, 1, 3}));
}

}  // namespace
}  // namespace centaur::core
