#include <gtest/gtest.h>

#include <memory>

#include "centaur/centaur_node.hpp"
#include "test_helpers.hpp"
#include "topology/generator.hpp"

namespace centaur::core {
namespace {

using centaur::testing::TestNet;
using topo::AsGraph;
using topo::NodeId;
using topo::Relationship;

constexpr NodeId A = 0, B = 1, C = 2, D = 3, Dp = 4;

// --------------------------------------------------------- basic flow -----

TEST(CentaurNode, TwoNodesLearnEachOther) {
  AsGraph g(2);
  g.add_link(0, 1, Relationship::kPeer);
  TestNet<CentaurNode> net(g);
  EXPECT_EQ(net.node(0).selected_path(1), (Path{0, 1}));
  EXPECT_EQ(net.node(1).selected_path(0), (Path{1, 0}));
}

TEST(CentaurNode, SquareConvergesWithDeterministicTieBreak) {
  TestNet<CentaurNode> net(centaur::testing::square_topology());
  // A's two candidate paths to D tie on class and length; the lower
  // next-hop id (B=1) wins.
  EXPECT_EQ(net.node(A).selected_path(D), (Path{A, B, D}));
  EXPECT_EQ(net.node(D).selected_path(A), (Path{D, B, A}));
  // Every node reaches every other node.
  for (NodeId v = 0; v < 4; ++v) {
    for (NodeId d = 0; d < 4; ++d) {
      ASSERT_TRUE(net.node(v).selected_path(d).has_value())
          << v << " -> " << d;
    }
  }
}

TEST(CentaurNode, LocalPGraphMatchesSelection) {
  TestNet<CentaurNode> net(centaur::testing::square_topology());
  const CentaurNode& a = net.node(A);
  const PGraph& local = a.local_pgraph();
  for (const auto& [dest, path] : a.selected_paths()) {
    const auto derived = local.derive_path(dest);
    ASSERT_TRUE(derived.has_value());
    EXPECT_EQ(*derived, path);
  }
}

TEST(CentaurNode, GaoRexfordPolicyRespected) {
  // 0 -peer- 1 -peer- 2: peers do not provide transit, so 0 never learns 2.
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(1, 2, Relationship::kPeer);
  TestNet<CentaurNode> net(g);
  EXPECT_TRUE(net.node(0).selected_path(1).has_value());
  EXPECT_FALSE(net.node(0).selected_path(2).has_value());
}

TEST(CentaurNode, CustomerRoutePreferredOverShorterPeer) {
  AsGraph g(3);
  g.add_link(0, 2, Relationship::kPeer);
  g.add_link(1, 0, Relationship::kProvider);  // 1 is 0's customer
  g.add_link(2, 1, Relationship::kProvider);  // 2 is 1's customer
  TestNet<CentaurNode> net(g);
  EXPECT_EQ(net.node(0).selected_path(2), (Path{0, 1, 2}));
}

// ----------------------------------------- link hiding (Fig 2 scenario) ---

TEST(CentaurNode, ExportFilterHidesLinkWithoutLoops) {
  // C hides its link C->D from A (the S2.1 motivating scenario).  A must
  // route to D via B; C still uses C->D itself; no loops form.
  TestNet<CentaurNode> net(
      centaur::testing::square_topology(),
      [](NodeId v, AsGraph& g) {
        CentaurNode::Config cfg;
        if (v == C) {
          cfg.export_link_filter = [](NodeId neighbor, NodeId from,
                                      NodeId to) {
            return !(neighbor == A && from == C && to == D);
          };
        }
        return std::make_unique<CentaurNode>(g, cfg);
      });
  EXPECT_EQ(net.node(A).selected_path(D), (Path{A, B, D}));
  EXPECT_EQ(net.node(C).selected_path(D), (Path{C, D}));
  // A's RIB graph from C must not contain the hidden link.
  const PGraph* from_c = net.node(A).neighbor_pgraph(C);
  ASSERT_NE(from_c, nullptr);
  EXPECT_FALSE(from_c->has_link(C, D));
}

// --------------------------------- ranking override (Fig 4 scenario) ------

TEST(CentaurNode, Fig4RankingOverrideCreatesPermissionLists) {
  // C prefers <C,A,B,D> to reach D but uses <C,D,D'> for D'; C->D then
  // becomes a downstream link and D is multi-homed in C's local P-graph.
  TestNet<CentaurNode> net(
      centaur::testing::fig4_topology(), [](NodeId v, AsGraph& g) {
        CentaurNode::Config cfg;
        if (v == C) {
          cfg.ranking = [](const policy::Candidate&, const Path& pa,
                           const policy::Candidate&, const Path& pb) {
            // Strictly prefer the long path for destination D.
            if (pa.back() == D && pb.back() == D) {
              return pa == Path{C, A, B, D} && pb != Path{C, A, B, D};
            }
            return false;
          };
        }
        return std::make_unique<CentaurNode>(g, cfg);
      });

  EXPECT_EQ(net.node(C).selected_path(D), (Path{C, A, B, D}));
  EXPECT_EQ(net.node(C).selected_path(Dp), (Path{C, D, Dp}));

  // C's local P-graph matches Figure 4(c): D multi-homed with permission
  // lists steering each destination.
  const PGraph& local = net.node(C).local_pgraph();
  EXPECT_TRUE(local.multi_homed(D));
  EXPECT_TRUE(local.link_data(B, D).plist.permits(D, kNoNextHop));
  EXPECT_TRUE(local.link_data(C, D).plist.permits(Dp, Dp));

  // A cannot derive the policy-violating <C, D> from C's announcement:
  // only the D'-path survives the permission lists.
  const PGraph* from_c = net.node(A).neighbor_pgraph(C);
  ASSERT_NE(from_c, nullptr);
  EXPECT_EQ(from_c->derive_path(Dp), (Path{C, D, Dp}));
  EXPECT_FALSE(from_c->derive_path(D).has_value());

  // Consequently A never builds the policy-violating <A, C, D>.
  EXPECT_EQ(net.node(A).selected_path(D), (Path{A, B, D}));
}

// ------------------------------------------------------ failure flow ------

TEST(CentaurNode, LinkFailureReconverges) {
  AsGraph g = centaur::testing::square_topology();
  TestNet<CentaurNode> net(g);
  const topo::LinkId bd = *net.graph().find_link(B, D);
  net.flip(bd, false);
  EXPECT_EQ(net.node(A).selected_path(D), (Path{A, C, D}));
  EXPECT_EQ(net.node(B).selected_path(D), (Path{B, A, C, D}));
  net.flip(bd, true);
  EXPECT_EQ(net.node(A).selected_path(D), (Path{A, B, D}));
}

TEST(CentaurNode, PartitionRemovesRoutes) {
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kSibling);
  g.add_link(1, 2, Relationship::kSibling);
  TestNet<CentaurNode> net(g);
  ASSERT_TRUE(net.node(0).selected_path(2).has_value());
  net.flip(*net.graph().find_link(1, 2), false);
  EXPECT_FALSE(net.node(0).selected_path(2).has_value());
  EXPECT_FALSE(net.node(1).selected_path(2).has_value());
  net.flip(*net.graph().find_link(1, 2), true);
  EXPECT_TRUE(net.node(0).selected_path(2).has_value());
}

TEST(CentaurNode, RootCauseWithdrawalIsOneLinkMessagePerNeighbor) {
  // Star around 0 with a chain hanging off: when the chain link fails the
  // failure is withdrawn as a single link update per neighbor, regardless
  // of how many destinations sat behind it.
  AsGraph g(6);
  g.add_link(1, 0, Relationship::kProvider);
  g.add_link(2, 0, Relationship::kProvider);
  g.add_link(3, 0, Relationship::kProvider);
  g.add_link(4, 0, Relationship::kProvider);  // 0 provides for 1..4
  g.add_link(5, 4, Relationship::kProvider);  // 5 behind 4
  TestNet<CentaurNode> net(g);
  ASSERT_EQ(net.node(1).selected_path(5), (Path{1, 0, 4, 5}));

  net.net().mark();
  net.net().set_link_state(*net.graph().find_link(4, 5), false);
  net.net().run_to_convergence();
  // Endpoint 0's neighbors each receive exactly one update from 0; total
  // messages stay near the neighbor count (4 from node 0 — node 4's only
  // other neighbor is 0).  Generous bound: strictly fewer than one message
  // per (destination x neighbor) = 6 x 4.
  EXPECT_LE(net.net().window().messages_sent, 8u);
  EXPECT_FALSE(net.node(1).selected_path(5).has_value());
}

TEST(CentaurNode, NoOpPolicyChangeSendsNothing) {
  TestNet<CentaurNode> net(centaur::testing::square_topology());
  // Nothing pending after convergence; a no-op policy change sends nothing.
  net.net().mark();
  net.node(C).policy_changed();
  net.net().run_to_convergence();
  EXPECT_EQ(net.net().window().messages_sent, 0u);
}

// ------------------------------------------------ larger random sweeps ----

TEST(CentaurNode, ConvergesOnTieredTopology) {
  util::Rng rng(99);
  AsGraph g = topo::tiered_internet(topo::caida_like_params(40), rng);
  TestNet<CentaurNode> net(g);
  // Full reachability (generator guarantees valley-free connectivity).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId d = 0; d < g.num_nodes(); ++d) {
      EXPECT_TRUE(net.node(v).selected_path(d).has_value())
          << v << " -> " << d;
    }
  }
}

}  // namespace
}  // namespace centaur::core
