#include <gtest/gtest.h>

#include "eval/static_eval.hpp"
#include "policy/valley_free.hpp"
#include "topology/generator.hpp"

namespace centaur::eval {
namespace {

using topo::AsGraph;
using topo::NodeId;

AsGraph test_topology(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  return topo::tiered_internet(topo::caida_like_params(n), rng);
}

TEST(PGraphStats, BasicShape) {
  const AsGraph g = test_topology(120, 8);
  util::Rng rng(1);
  const PGraphStats s = compute_pgraph_stats(g, 10, rng);
  EXPECT_EQ(s.vantage_count, 10u);
  EXPECT_EQ(s.unreachable_pairs, 0u);  // tiered generator: full reachability
  // A local P-graph spans all destinations: at least n-1 links, at most all
  // topology links.
  EXPECT_GE(s.avg_links, static_cast<double>(g.num_nodes() - 1));
  EXPECT_LE(s.avg_links, static_cast<double>(g.num_links()));
  EXPECT_GT(s.avg_plists, 0.0);
  EXPECT_LE(s.avg_plists, s.avg_links);
  // The entry-count fractions form a distribution.
  const double sum = s.frac_entries_1 + s.frac_entries_2 + s.frac_entries_3 +
                     s.frac_entries_gt3;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(s.plists_total, 0u);
  EXPECT_GT(s.path_length.mean(), 1.0);
}

TEST(PGraphStats, VantageSampleClampedToNodeCount) {
  const AsGraph g = test_topology(50, 9);
  util::Rng rng(2);
  const PGraphStats s = compute_pgraph_stats(g, 10'000, rng);
  EXPECT_EQ(s.vantage_count, 50u);
}

TEST(PGraphStats, DeterministicForSeed) {
  const AsGraph g = test_topology(80, 10);
  util::Rng r1(3), r2(3);
  const PGraphStats a = compute_pgraph_stats(g, 8, r1);
  const PGraphStats b = compute_pgraph_stats(g, 8, r2);
  EXPECT_DOUBLE_EQ(a.avg_links, b.avg_links);
  EXPECT_DOUBLE_EQ(a.avg_plists, b.avg_plists);
  EXPECT_EQ(a.plists_total, b.plists_total);
}

TEST(BuildNodePGraph, MatchesSolverPaths) {
  const AsGraph g = test_topology(60, 11);
  const NodeId vantage = 17;
  const core::PGraph pg = build_node_pgraph(g, vantage);
  EXPECT_EQ(pg.root(), vantage);
  for (NodeId dest = 0; dest < g.num_nodes(); ++dest) {
    const auto solver = policy::ValleyFreeRoutes::compute(g, dest);
    const auto derived = pg.derive_path(dest);
    ASSERT_TRUE(derived.has_value()) << dest;
    EXPECT_EQ(*derived, solver.path_from(vantage)) << dest;
  }
}

TEST(FailureOverhead, CentaurOrdersOfMagnitudeBelowBgp) {
  const AsGraph g = test_topology(400, 12);
  util::Rng rng(4);
  const FailureOverhead fo = immediate_failure_overhead(g, 80, rng);
  EXPECT_EQ(fo.links_sampled, 80u);
  EXPECT_EQ(fo.bgp_messages.count(), 80u);
  // Centaur withdraws at most one message per (endpoint, neighbor) pair.
  EXPECT_GE(fo.bgp_messages.mean(), fo.centaur_messages.mean());
  // The paper's Fig 5 reports 100-1000x; at this reduced scale expect at
  // least an order of magnitude.
  EXPECT_GT(fo.bgp_messages.mean(), 10 * fo.centaur_messages.mean());
}

TEST(FailureOverhead, CentaurBoundedByNeighborCount) {
  const AsGraph g = test_topology(150, 13);
  util::Rng rng(5);
  const FailureOverhead fo = immediate_failure_overhead(g, 40, rng);
  // A single link failure notifies at most deg(a) + deg(b) neighbors.
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  EXPECT_LE(fo.centaur_messages.max(), static_cast<double>(2 * max_deg));
}

TEST(FailureOverhead, SampleLargerThanLinksClamped) {
  const AsGraph g = test_topology(30, 14);
  util::Rng rng(6);
  const FailureOverhead fo = immediate_failure_overhead(g, 10'000, rng);
  EXPECT_EQ(fo.links_sampled, g.num_links());
}

}  // namespace
}  // namespace centaur::eval

namespace centaur::eval {
namespace {

TEST(PGraphStats, ModesAndSchemesOrdering) {
  const AsGraph g = test_topology(300, 21);
  auto run = [&](PathSetMode m, PlistScheme s) {
    util::Rng r(3);
    return compute_pgraph_stats(g, 8, r, m, s);
  };
  const auto multi_min = run(PathSetMode::kMultipath, PlistScheme::kMinimal);
  const auto multi_per = run(PathSetMode::kMultipath, PlistScheme::kPerLink);
  const auto single_min = run(PathSetMode::kSinglePath, PlistScheme::kMinimal);
  const auto single_per = run(PathSetMode::kSinglePath, PlistScheme::kPerLink);
  // Multipath P-graphs contain at least as many links as single-path ones.
  EXPECT_GE(multi_min.avg_links, single_min.avg_links);
  // The minimal scheme strictly reduces the number of lists.
  EXPECT_LT(multi_min.avg_plists, multi_per.avg_plists);
  EXPECT_LE(single_min.avg_plists, single_per.avg_plists);
  // Multipath produces multi-homing (Table 4's headline effect).
  EXPECT_GT(multi_min.avg_plists, 0.0);
  EXPECT_GT(multi_min.avg_links,
            static_cast<double>(g.num_nodes() - 1));
}

TEST(PGraphStats, SinglePathStrictTieBreakNearTree) {
  // With a globally consistent tie-break, P-graphs should be trees or very
  // close to trees (the structural argument in DESIGN.md).
  const AsGraph g = test_topology(200, 22);
  util::Rng r(4);
  const auto s =
      compute_pgraph_stats(g, 8, r, PathSetMode::kSinglePath,
                           PlistScheme::kPerLink,
                           policy::TieBreak::kLowestNextHop);
  EXPECT_LT(s.avg_links, static_cast<double>(g.num_nodes()) * 1.02);
}

}  // namespace
}  // namespace centaur::eval

namespace centaur::eval {
namespace {

TEST(MultipathDissemination, CentaurMoreCompactThanPathVector) {
  const AsGraph g = test_topology(150, 31);
  const auto cost = multipath_dissemination_cost(g, 149);
  EXPECT_EQ(cost.destinations, g.num_nodes() - 1);
  // At least one path per destination; some destinations have several.
  EXPECT_GE(cost.total_paths, static_cast<double>(cost.destinations));
  EXPECT_GT(cost.max_paths_per_dest, 1.0);
  // The union DAG never exceeds the topology's link count, and the
  // link-level encoding beats per-path announcements.
  EXPECT_LE(cost.centaur_links, g.num_links());
  EXPECT_LT(static_cast<double>(cost.centaur_bytes), cost.path_vector_bytes);
}

TEST(MultipathDissemination, SinglePathTopologyDegenerates) {
  // A pure chain has exactly one path per destination; path vector and
  // Centaur costs are then within a small constant of each other.
  AsGraph g(6);
  for (NodeId v = 0; v + 1 < 6; ++v) {
    g.add_link(v, v + 1, topo::Relationship::kSibling);
  }
  const auto cost = multipath_dissemination_cost(g, 0);
  EXPECT_EQ(cost.destinations, 5u);
  EXPECT_DOUBLE_EQ(cost.total_paths, 5.0);
  EXPECT_DOUBLE_EQ(cost.max_paths_per_dest, 1.0);
  EXPECT_EQ(cost.centaur_links, 5u);
}

}  // namespace
}  // namespace centaur::eval
