// Cross-protocol equivalence and safety properties (DESIGN.md invariants
// 1-4): under identical Gao-Rexford policies and tie-breaking, the static
// valley-free solver, the BGP baseline, and Centaur must converge to the
// same best-path set; all selected paths must be loop-free, valid, and
// valley-free.  This is the strongest correctness statement in the suite —
// Centaur's link-level announcements and Permission Lists must reconstruct
// exactly the paths a path-vector protocol would pick.
#include <gtest/gtest.h>

#include <tuple>

#include "bgp/bgp_node.hpp"
#include "centaur/centaur_node.hpp"
#include "policy/valley_free.hpp"
#include "test_helpers.hpp"
#include "topology/algorithms.hpp"
#include "topology/generator.hpp"

namespace centaur {
namespace {

using centaur::testing::TestNet;
using topo::AsGraph;
using topo::NodeId;
using topo::Path;

enum class Gen { kTiered, kBrite };

class EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Gen, std::size_t, std::uint64_t>> {
 protected:
  AsGraph make_graph() const {
    const auto [gen, nodes, seed] = GetParam();
    util::Rng rng(seed);
    switch (gen) {
      case Gen::kTiered:
        return topo::tiered_internet(topo::caida_like_params(nodes), rng);
      case Gen::kBrite:
        return topo::brite_like(nodes, 2, 4, rng);
    }
    return AsGraph{};
  }
};

TEST_P(EquivalenceTest, SolverBgpAndCentaurAgree) {
  const AsGraph graph = make_graph();
  const std::size_t n = graph.num_nodes();

  TestNet<bgp::BgpNode> bgp_net(graph);
  TestNet<core::CentaurNode> centaur_net(graph);

  for (NodeId dest = 0; dest < n; ++dest) {
    const auto solver = policy::ValleyFreeRoutes::compute(graph, dest);
    for (NodeId v = 0; v < n; ++v) {
      if (v == dest) continue;
      const auto bgp_path = bgp_net.node(v).selected_path(dest);
      const auto cent_path = centaur_net.node(v).selected_path(dest);
      if (!solver.at(v).reachable()) {
        EXPECT_FALSE(bgp_path.has_value()) << v << "->" << dest;
        EXPECT_FALSE(cent_path.has_value()) << v << "->" << dest;
        continue;
      }
      const Path expect = solver.path_from(v);
      ASSERT_TRUE(bgp_path.has_value()) << "BGP " << v << "->" << dest;
      ASSERT_TRUE(cent_path.has_value()) << "Centaur " << v << "->" << dest;
      EXPECT_EQ(*bgp_path, expect) << "BGP " << v << "->" << dest;
      EXPECT_EQ(*cent_path, expect) << "Centaur " << v << "->" << dest;
    }
  }
}

TEST_P(EquivalenceTest, CentaurPathsAreSafe) {
  const AsGraph graph = make_graph();
  TestNet<core::CentaurNode> net(graph);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [dest, path] : net.node(v).selected_paths()) {
      EXPECT_TRUE(topo::is_valid_path(graph, path)) << topo::to_string(path);
      EXPECT_TRUE(policy::is_valley_free(graph, path))
          << topo::to_string(path);
    }
  }
}

TEST_P(EquivalenceTest, HopByHopForwardingIsLoopFreeAndConsistent) {
  // Invariant 1: actually forwarding packets hop by hop (each node
  // consulting only its own next hop) reaches the destination without
  // revisiting any node — the property the paper's Figures 1-2 show breaks
  // for naive policy-annotated link state.
  const AsGraph graph = make_graph();
  TestNet<core::CentaurNode> net(graph);
  const std::size_t n = graph.num_nodes();
  for (NodeId dest = 0; dest < n; ++dest) {
    for (NodeId src = 0; src < n; ++src) {
      if (src == dest) continue;
      if (!net.node(src).selected_path(dest).has_value()) continue;
      NodeId cur = src;
      std::set<NodeId> seen{cur};
      while (cur != dest) {
        const auto path = net.node(cur).selected_path(dest);
        ASSERT_TRUE(path.has_value())
            << "forwarding hole at " << cur << " for dest " << dest;
        ASSERT_GE(path->size(), 2u);
        cur = (*path)[1];
        ASSERT_TRUE(seen.insert(cur).second)
            << "forwarding loop at " << cur << " for dest " << dest;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Combine(::testing::Values(Gen::kTiered, Gen::kBrite),
                       ::testing::Values<std::size_t>(20, 45),
                       ::testing::Values<std::uint64_t>(7, 1234)));

}  // namespace
}  // namespace centaur
