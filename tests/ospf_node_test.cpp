#include <gtest/gtest.h>

#include "linkstate/ospf_node.hpp"
#include "test_helpers.hpp"
#include "topology/algorithms.hpp"
#include "topology/generator.hpp"

namespace centaur::linkstate {
namespace {

using centaur::testing::TestNet;
using topo::AsGraph;
using topo::NodeId;
using topo::Relationship;

TEST(OspfNode, LsdbSynchronisesEverywhere) {
  TestNet<OspfNode> net(centaur::testing::square_topology());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(net.node(v).lsdb().size(), 4u) << "node " << v;
  }
}

TEST(OspfNode, SpfMatchesBfsDistances) {
  util::Rng rng(21);
  AsGraph g = topo::brite_like(40, 2, 4, rng);
  TestNet<OspfNode> net(g);
  for (const NodeId v : {NodeId{0}, NodeId{7}, NodeId{23}}) {
    const auto spf = net.node(v).spf();
    const auto bfs = topo::bfs_distances(net.graph(), v);
    for (NodeId d = 0; d < net.graph().num_nodes(); ++d) {
      EXPECT_EQ(spf.distance[d], bfs[d]) << v << " -> " << d;
    }
  }
}

TEST(OspfNode, ShortestPathIsValid) {
  TestNet<OspfNode> net(centaur::testing::square_topology());
  const auto p = net.node(0).shortest_path(3);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 3u);
  EXPECT_TRUE(topo::is_valid_path(net.graph(), p));
}

TEST(OspfNode, IgnoresPolicies) {
  // Peer-peer chain: OSPF routes straight through where BGP/Centaur would
  // refuse (no policy support — the paper's point in Fig 7).
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(1, 2, Relationship::kPeer);
  TestNet<OspfNode> net(g);
  const auto spf = net.node(0).spf();
  EXPECT_EQ(spf.distance[2], 2u);
}

TEST(OspfNode, LinkFailureReflowsSpf) {
  TestNet<OspfNode> net(centaur::testing::square_topology());
  net.flip(*net.graph().find_link(1, 3), false);
  const auto p = net.node(0).shortest_path(3);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], 2u);  // reroutes via node 2
  // Both endpoints re-originated; every node has the fresh LSAs.
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_GE(net.node(v).lsdb().at(1).seq, 2u);
    EXPECT_GE(net.node(v).lsdb().at(3).seq, 2u);
  }
}

TEST(OspfNode, PartitionLeavesStaleButUnreachable) {
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(1, 2, Relationship::kPeer);
  TestNet<OspfNode> net(g);
  net.flip(*net.graph().find_link(1, 2), false);
  const auto spf = net.node(0).spf();
  EXPECT_EQ(spf.distance[2], OspfNode::kUnreachable);
}

TEST(OspfNode, FloodingCostScalesWithLinks) {
  // A link event floods over every link: message count per event is
  // Theta(E), independent of how many destinations are affected.
  util::Rng rng(5);
  AsGraph g = topo::brite_like(60, 2, 5, rng);
  const std::size_t links = g.num_links();
  TestNet<OspfNode> net(g);
  const std::size_t msgs = net.flip(0, false);
  // Two endpoints each re-originate: roughly 2 LSAs x one transmission per
  // link direction; allow generous slack for duplicate suppression timing.
  EXPECT_GT(msgs, links);        // floods the whole network
  EXPECT_LT(msgs, 10 * links);   // but stays linear in E
}

TEST(OspfNode, StaleLsaIgnored) {
  TestNet<OspfNode> net(centaur::testing::square_topology());
  // Deliver an old LSA by hand: nothing should change or be re-flooded.
  net.net().mark();
  Lsa stale;
  stale.origin = 1;
  stale.seq = 0;  // older than anything live
  net.net().send(0, 1, std::make_shared<LsaMessage>(stale));
  net.net().run_to_convergence();
  // Only our injected message was sent; no forwarding happened.
  EXPECT_EQ(net.net().window().messages_sent, 1u);
}

}  // namespace
}  // namespace centaur::linkstate
