#include <gtest/gtest.h>

#include <sstream>

#include "topology/algorithms.hpp"
#include "topology/as_graph.hpp"
#include "topology/parser.hpp"
#include "topology/stats.hpp"

namespace centaur::topo {
namespace {

AsGraph line_graph(std::size_t n) {
  AsGraph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    g.add_link(v, v + 1, Relationship::kPeer);
  }
  return g;
}

NodeId as_node(const ParsedTopology& t, std::uint32_t as) {
  const NodeId* id = t.as_to_node.find(as);
  EXPECT_NE(id, nullptr) << "AS " << as << " was not interned";
  return id != nullptr ? *id : kInvalidNode;
}

// ------------------------------------------------------------ AsGraph ----

TEST(AsGraph, AddNodesAndLinks) {
  AsGraph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_node(), 1u);
  EXPECT_EQ(g.add_node(), 2u);
  const LinkId l = g.add_link(0, 1, Relationship::kProvider);
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_EQ(g.link(l).a, 0u);
  EXPECT_EQ(g.link(l).b, 1u);
  EXPECT_TRUE(g.has_link(0, 1));
  EXPECT_TRUE(g.has_link(1, 0));
  EXPECT_FALSE(g.has_link(0, 2));
}

TEST(AsGraph, RelationshipIsDirectional) {
  AsGraph g(2);
  g.add_link(0, 1, Relationship::kProvider);  // 1 is 0's provider
  EXPECT_EQ(g.rel(0, 1), Relationship::kProvider);
  EXPECT_EQ(g.rel(1, 0), Relationship::kCustomer);
}

TEST(AsGraph, SymmetricRelationshipsInvertToThemselves) {
  AsGraph g(4);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(2, 3, Relationship::kSibling);
  EXPECT_EQ(g.rel(0, 1), Relationship::kPeer);
  EXPECT_EQ(g.rel(1, 0), Relationship::kPeer);
  EXPECT_EQ(g.rel(2, 3), Relationship::kSibling);
  EXPECT_EQ(g.rel(3, 2), Relationship::kSibling);
}

TEST(AsGraph, RejectsSelfLoopDuplicateUnknown) {
  AsGraph g(2);
  EXPECT_THROW(g.add_link(0, 0, Relationship::kPeer), std::invalid_argument);
  EXPECT_THROW(g.add_link(0, 5, Relationship::kPeer), std::invalid_argument);
  g.add_link(0, 1, Relationship::kPeer);
  EXPECT_THROW(g.add_link(1, 0, Relationship::kPeer), std::invalid_argument);
}

TEST(AsGraph, RelThrowsWithoutLink) {
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kPeer);
  EXPECT_THROW(g.rel(0, 2), std::out_of_range);
}

TEST(AsGraph, LinkStateFlips) {
  AsGraph g(2);
  const LinkId l = g.add_link(0, 1, Relationship::kPeer);
  EXPECT_TRUE(g.link_up(l));
  g.set_link_up(l, false);
  EXPECT_FALSE(g.link_up(l));
}

TEST(AsGraph, CountLinksByCategory) {
  AsGraph g(6);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(1, 2, Relationship::kProvider);
  g.add_link(2, 3, Relationship::kCustomer);
  g.add_link(3, 4, Relationship::kSibling);
  g.add_link(4, 5, Relationship::kPeer);
  const auto c = g.count_links();
  EXPECT_EQ(c.peering, 2u);
  EXPECT_EQ(c.provider, 2u);
  EXPECT_EQ(c.sibling, 1u);
}

TEST(AsGraph, NeighborViewsAreConsistent) {
  AsGraph g(3);
  g.add_link(0, 1, Relationship::kProvider);
  g.add_link(0, 2, Relationship::kCustomer);
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].node, 1u);
  EXPECT_EQ(nbrs[0].rel, Relationship::kProvider);
  EXPECT_EQ(nbrs[1].node, 2u);
  EXPECT_EQ(nbrs[1].rel, Relationship::kCustomer);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Relationship, Invert) {
  EXPECT_EQ(invert(Relationship::kCustomer), Relationship::kProvider);
  EXPECT_EQ(invert(Relationship::kProvider), Relationship::kCustomer);
  EXPECT_EQ(invert(Relationship::kPeer), Relationship::kPeer);
  EXPECT_EQ(invert(Relationship::kSibling), Relationship::kSibling);
}

TEST(PathPrinting, Format) {
  EXPECT_EQ(to_string(Path{1, 2, 3}), "<1, 2, 3>");
  EXPECT_EQ(to_string(Path{}), "<>");
}

// --------------------------------------------------------- Algorithms ----

TEST(Algorithms, ConnectedComponents) {
  AsGraph g(5);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(2, 3, Relationship::kPeer);
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 3u);  // {0,1} {2,3} {4}
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[2], c.label[3]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_FALSE(is_connected(g));
}

TEST(Algorithms, DownLinksBreakConnectivity) {
  AsGraph g = line_graph(4);
  EXPECT_TRUE(is_connected(g));
  g.set_link_up(*g.find_link(1, 2), false);
  EXPECT_FALSE(is_connected(g));
}

TEST(Algorithms, BfsDistances) {
  AsGraph g = line_graph(5);
  const auto d = bfs_distances(g, 0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
  g.set_link_up(*g.find_link(2, 3), false);
  const auto d2 = bfs_distances(g, 0);
  EXPECT_EQ(d2[3], kUnreachable);
}

TEST(Algorithms, NodesByDegreeStable) {
  AsGraph g(4);
  g.add_link(0, 1, Relationship::kPeer);
  g.add_link(0, 2, Relationship::kPeer);
  g.add_link(0, 3, Relationship::kPeer);
  g.add_link(1, 2, Relationship::kPeer);
  const auto order = nodes_by_degree(g);
  EXPECT_EQ(order[0], 0u);  // degree 3
  EXPECT_EQ(order[1], 1u);  // degree 2, lower id first
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 3u);
}

TEST(Algorithms, IsValidPath) {
  AsGraph g = line_graph(4);
  EXPECT_TRUE(is_valid_path(g, {0, 1, 2, 3}));
  EXPECT_FALSE(is_valid_path(g, {0, 2}));        // not adjacent
  EXPECT_FALSE(is_valid_path(g, {0, 1, 0}));     // loop
  EXPECT_FALSE(is_valid_path(g, {}));            // empty
  EXPECT_FALSE(is_valid_path(g, {0, 1, 9}));     // unknown node
  g.set_link_up(*g.find_link(1, 2), false);
  EXPECT_FALSE(is_valid_path(g, {0, 1, 2}));     // down link
}

TEST(Algorithms, LargestComponentExtraction) {
  AsGraph g(6);
  g.add_link(0, 1, Relationship::kProvider);
  g.add_link(1, 2, Relationship::kPeer);
  g.add_link(3, 4, Relationship::kPeer);
  const auto sub = largest_component(g);
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_links(), 2u);
  EXPECT_EQ(sub.new_to_old.size(), 3u);
  EXPECT_EQ(sub.old_to_new[5], kInvalidNode);
  // Relationship preserved through the mapping.
  const NodeId n0 = sub.old_to_new[0];
  const NodeId n1 = sub.old_to_new[1];
  EXPECT_EQ(sub.graph.rel(n0, n1), Relationship::kProvider);
}

// -------------------------------------------------------------- Parser ----

TEST(Parser, ParsesAsRelFormat) {
  const std::string text =
      "# comment\n"
      "100|200|-1\n"   // 100 provides for 200
      "200|300|0\n"    // peers
      "300|400|2\n";   // siblings
  const ParsedTopology t = parse_as_rel_text(text);
  EXPECT_EQ(t.graph.num_nodes(), 4u);
  EXPECT_EQ(t.graph.num_links(), 3u);
  EXPECT_EQ(t.skipped_lines, 1u);
  const NodeId n100 = as_node(t, 100);
  const NodeId n200 = as_node(t, 200);
  const NodeId n300 = as_node(t, 300);
  const NodeId n400 = as_node(t, 400);
  // 200 is 100's customer.
  EXPECT_EQ(t.graph.rel(n100, n200), Relationship::kCustomer);
  EXPECT_EQ(t.graph.rel(n200, n100), Relationship::kProvider);
  EXPECT_EQ(t.graph.rel(n200, n300), Relationship::kPeer);
  EXPECT_EQ(t.graph.rel(n300, n400), Relationship::kSibling);
  EXPECT_EQ(t.node_to_as[n100], 100u);
}

TEST(Parser, SkipsDuplicatesAndSelfLoops) {
  const ParsedTopology t = parse_as_rel_text("1|2|0\n1|2|0\n2|1|0\n3|3|0\n");
  EXPECT_EQ(t.graph.num_links(), 1u);
  EXPECT_EQ(t.skipped_lines, 3u);
}

TEST(Parser, RejectsMalformedLines) {
  EXPECT_THROW(parse_as_rel_text("1|2\n"), std::runtime_error);
  EXPECT_THROW(parse_as_rel_text("a|2|0\n"), std::runtime_error);
  EXPECT_THROW(parse_as_rel_text("1|2|7\n"), std::runtime_error);
  EXPECT_THROW(parse_as_rel_text("1|2|0|9\n"), std::runtime_error);
  // RFC 7300 reserved ASN, doubles as the as_to_node sentinel.
  EXPECT_THROW(parse_as_rel_text("4294967295|2|0\n"), std::runtime_error);
}

TEST(Parser, RoundTrip) {
  const std::string text = "10|20|-1\n20|30|0\n30|40|2\n";
  const ParsedTopology t = parse_as_rel_text(text);
  const std::string out = write_as_rel_text(t.graph, t.node_to_as);
  const ParsedTopology t2 = parse_as_rel_text(out);
  EXPECT_EQ(t2.graph.num_nodes(), t.graph.num_nodes());
  EXPECT_EQ(t2.graph.num_links(), t.graph.num_links());
  const auto c1 = t.graph.count_links();
  const auto c2 = t2.graph.count_links();
  EXPECT_EQ(c1.peering, c2.peering);
  EXPECT_EQ(c1.provider, c2.provider);
  EXPECT_EQ(c1.sibling, c2.sibling);
  // Orientation preserved: 20 must still be 10's customer.
  EXPECT_EQ(t2.graph.rel(as_node(t2, 10), as_node(t2, 20)),
            Relationship::kCustomer);
}

TEST(Parser, MissingFileThrows) {
  EXPECT_THROW(load_as_rel_file("/nonexistent/path/file.txt"),
               std::runtime_error);
}

// --------------------------------------------------------------- Stats ----

TEST(Stats, ComputesTopologyStats) {
  AsGraph g(4);
  g.add_link(0, 1, Relationship::kProvider);
  g.add_link(1, 2, Relationship::kPeer);
  g.add_link(2, 3, Relationship::kSibling);
  g.add_link(0, 2, Relationship::kProvider);
  const TopologyStats s = compute_stats(g, "test");
  EXPECT_EQ(s.nodes, 4u);
  EXPECT_EQ(s.links, 4u);
  EXPECT_EQ(s.provider, 2u);
  EXPECT_EQ(s.peering, 1u);
  EXPECT_EQ(s.sibling, 1u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.max_degree, 3u);
  EXPECT_TRUE(s.connected);
  std::ostringstream os;
  os << s;
  EXPECT_NE(os.str().find("4 nodes"), std::string::npos);
}

}  // namespace
}  // namespace centaur::topo
