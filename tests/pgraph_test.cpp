#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "centaur/build_graph.hpp"
#include "centaur/pgraph.hpp"

namespace centaur::core {
namespace {

// Node ids used for readability in the paper-figure tests.
constexpr NodeId A = 0, B = 1, C = 2, D = 3, Dp = 4;  // Dp is D' of Fig 4

TEST(PGraph, AddRemoveLinks) {
  PGraph g(A);
  EXPECT_TRUE(g.add_link(A, B));
  EXPECT_FALSE(g.add_link(A, B));  // idempotent
  EXPECT_TRUE(g.has_link(A, B));
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_TRUE(g.remove_link(A, B));
  EXPECT_FALSE(g.remove_link(A, B));
  EXPECT_EQ(g.num_links(), 0u);
}

TEST(PGraph, DirectednessMatters) {
  PGraph g(A);
  g.add_link(A, B);
  EXPECT_FALSE(g.has_link(B, A));
  EXPECT_EQ(g.in_degree(B), 1u);
  EXPECT_EQ(g.in_degree(A), 0u);
}

TEST(PGraph, SelfLoopRejected) {
  PGraph g(A);
  EXPECT_THROW(g.add_link(A, A), std::invalid_argument);
}

TEST(PGraph, ParentsChildrenMultiHoming) {
  PGraph g(A);
  g.add_link(A, B);
  g.add_link(A, C);
  g.add_link(B, D);
  g.add_link(C, D);
  EXPECT_TRUE(std::ranges::equal(g.parents(D), std::vector<NodeId>{B, C}));
  EXPECT_TRUE(std::ranges::equal(g.children(A), std::vector<NodeId>{B, C}));
  EXPECT_TRUE(g.multi_homed(D));
  EXPECT_FALSE(g.multi_homed(B));
  g.remove_link(C, D);
  EXPECT_FALSE(g.multi_homed(D));
}

TEST(PGraph, DestinationMarks) {
  PGraph g(A);
  g.mark_destination(B);
  EXPECT_TRUE(g.is_destination(B));
  EXPECT_TRUE(g.unmark_destination(B));
  EXPECT_FALSE(g.unmark_destination(B));
}

TEST(PGraph, ResetClearsEverything) {
  PGraph g(A);
  g.add_link(A, B);
  g.mark_destination(B);
  g.reset(C);
  EXPECT_EQ(g.root(), C);
  EXPECT_EQ(g.num_links(), 0u);
  EXPECT_TRUE(g.destinations().empty());
}

TEST(PGraph, LinkDataThrowsForMissingLink) {
  PGraph g(A);
  EXPECT_THROW(g.link_data(A, B), std::out_of_range);
}

// ----------------------------------------------------------- DerivePath ---

TEST(DerivePath, RootItself) {
  PGraph g(A);
  const auto p = g.derive_path(A);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{A}));
}

TEST(DerivePath, SimpleChain) {
  PGraph g(A);
  g.add_link(A, B);
  g.add_link(B, D);
  const auto p = g.derive_path(D);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{A, B, D}));
}

TEST(DerivePath, UnknownNode) {
  PGraph g(A);
  g.add_link(A, B);
  EXPECT_FALSE(g.derive_path(D).has_value());
}

TEST(DerivePath, DanglingParentChain) {
  PGraph g(A);
  g.add_link(B, D);  // B has no parent and is not the root
  EXPECT_FALSE(g.derive_path(D).has_value());
}

TEST(DerivePath, CorruptCycleThrows) {
  PGraph g(A);
  g.add_link(B, C);
  g.add_link(C, B);
  EXPECT_THROW(g.derive_path(C), std::logic_error);
}

/// The paper's Figure 4(c) scenario: C prefers <C,A,B,D> for destination D
/// but uses <C,D,D'> for destination D', so C->D is announced as a
/// downstream link.  D becomes multi-homed in C's local P-graph; the
/// Permission Lists must make DerivePath return exactly the paths C uses.
PGraph fig4_pgraph() {
  PGraph g(C);
  g.add_link(C, A);
  g.add_link(A, B);
  g.add_link(B, D);
  g.add_link(C, D);
  g.add_link(D, Dp);
  g.mark_destination(D);
  g.mark_destination(Dp);
  // D is multi-homed: permission lists on both in-links.
  g.link_data(B, D).plist.add(D, kNoNextHop);  // <C,A,B,D>: D is the dest
  g.link_data(C, D).plist.add(Dp, Dp);         // <C,D,D'>: D's next hop is D'
  return g;
}

TEST(DerivePath, Fig4PolicyCompliantPathForD) {
  const PGraph g = fig4_pgraph();
  const auto p = g.derive_path(D);
  ASSERT_TRUE(p.has_value());
  // NOT the short policy-violating <C,D>.
  EXPECT_EQ(*p, (Path{C, A, B, D}));
}

TEST(DerivePath, Fig4PolicyCompliantPathForDPrime) {
  const PGraph g = fig4_pgraph();
  const auto p = g.derive_path(Dp);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{C, D, Dp}));
}

TEST(DerivePath, Fig4WithoutPermissionWouldBeAmbiguous) {
  // Strip the permission lists: the multi-homed node now has no permitted
  // in-link, so derivation fails rather than guessing a policy-violating
  // path.
  PGraph g = fig4_pgraph();
  g.link_data(B, D).plist = PermissionList{};
  g.link_data(C, D).plist = PermissionList{};
  EXPECT_FALSE(g.derive_path(D).has_value());
}

TEST(DerivePath, UniquePathPerDestination) {
  // Invariant (S4.2): exactly one policy-compliant path per destination is
  // derivable.  With permission lists in place, check both destinations
  // resolve deterministically even though D has two parents.
  const PGraph g = fig4_pgraph();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(*g.derive_path(D), (Path{C, A, B, D}));
    EXPECT_EQ(*g.derive_path(Dp), (Path{C, D, Dp}));
  }
}

TEST(PGraph, ActivePlistCount) {
  const PGraph g = fig4_pgraph();
  // Two in-links of the multi-homed D carry permission lists; D' is
  // single-homed so D->D' carries none.
  EXPECT_EQ(g.active_plist_count(), 2u);
}

TEST(PGraph, EqualityIncludesPlists) {
  const PGraph a = fig4_pgraph();
  PGraph b = fig4_pgraph();
  EXPECT_TRUE(a == b);
  b.link_data(C, D).plist.add(D, kNoNextHop);
  EXPECT_FALSE(a == b);
  PGraph c = fig4_pgraph();
  c.remove_link(D, Dp);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace centaur::core
